//! Profit-improving local search — the consolidation pass.
//!
//! Descending Best-Fit places VMs one at a time with marginal profit, so
//! it cannot see gains that only materialize when a host *empties* (its
//! idle draw disappears). The paper's observed behaviour — "when a
//! potential VM move does not bring any improvement in SLA or energy
//! use, the VM either stays in its DC or is consolidated"; "energy
//! consumption pushes for consolidation into the DC with cheapest
//! energy (see the low load moments)" — needs exactly that whole-schedule
//! view.
//!
//! [`improve_schedule`] runs steepest-ascent single-VM relocation over
//! the full objective (which prices emptied hosts correctly and charges
//! migration blackouts), accepting only strictly improving moves.
//! Because every accepted move must beat its own migration penalty, the
//! pass is self-damping — no churn.
//!
//! ## Two implementations, one answer
//!
//! [`improve_schedule_reference`] is the literal steepest-ascent loop:
//! after every accepted move it rescans all (VM, host) pairs. Each pair
//! is cheap — the [`crate::evaluator::ScheduleEvaluator`] scores a move
//! by visiting only the two touched hosts — but the rescan itself is
//! O(V·H) per move, which is what kept consolidation disabled at the
//! 10000×1000 bench tier.
//!
//! [`improve_schedule_incremental`] exploits the same locality one level
//! up: a move from host `a` to host `b` only changes the gains of pairs
//! *touching* `a` or `b`. It keeps, per VM, the best qualifying
//! candidate move, and after an accepted move re-scores only (1) VMs
//! resident on the two touched hosts (their cached revenue changed, so
//! every gain of theirs is stale), (2) other VMs' candidates *toward*
//! the touched hosts, and (3) VMs whose stored best aimed at a touched
//! host. Per-VM rescans shortlist destinations through the bucketed
//! [`crate::index::CandidateIndex`] instead of scanning all hosts:
//! groups failing the (group-uniform) memory and headroom guards are
//! skipped wholesale with one check, and empty groups are scored through
//! one representative. The result is **bit-identical** to the reference
//! loop (see `tests/localsearch_equivalence.rs`); [`improve_schedule`]
//! dispatches on fleet size exactly like Best-Fit does.

use crate::bestfit::SchedTuning;
use crate::evaluator::ScheduleEvaluator;
use crate::index::{CandidateIndex, IndexMode};
use crate::oracle::QosOracle;
use crate::problem::{Problem, Schedule};

/// Local-search knobs.
#[derive(Clone, Debug)]
pub struct LocalSearchConfig {
    /// Upper bound on accepted moves per round (safety valve; the search
    /// almost always converges earlier).
    pub max_moves: usize,
    /// Minimum € gain for a move to be accepted (keeps estimate noise
    /// from triggering an exchange).
    pub min_gain_eur: f64,
    /// Consolidation headroom: reject moves that push the destination
    /// host's believed utilisation (dominant share) above this. The
    /// schedule holds for a whole round while load drifts and jitters;
    /// packing to 100% of the *current* estimate trades real SLA for
    /// estimated energy.
    pub max_util_after_move: f64,
    /// Shared placement tuning: `index_min_hosts` picks between the
    /// reference rescan and the incremental indexed path (both produce
    /// the same schedule), `near_top_k` opts the per-VM shortlist into
    /// the approximate near-equivalence index.
    pub tuning: SchedTuning,
}

impl Default for LocalSearchConfig {
    fn default() -> Self {
        LocalSearchConfig {
            max_moves: 16,
            min_gain_eur: 1e-6,
            max_util_after_move: 0.45,
            tuning: SchedTuning::default(),
        }
    }
}

/// Steepest-ascent single-VM relocation until no move clears the gain
/// threshold. Returns the improved schedule and the number of moves
/// applied. Dispatches on fleet size: paper-scale problems take the
/// reference rescan loop verbatim, fleets of `tuning.index_min_hosts`
/// hosts or more take the incremental candidate-maintenance path (same
/// schedule either way).
pub fn improve_schedule(
    problem: &Problem,
    oracle: &dyn QosOracle,
    schedule: Schedule,
    cfg: &LocalSearchConfig,
) -> (Schedule, usize) {
    if problem.hosts.len() >= cfg.tuning.index_min_hosts {
        improve_schedule_incremental(problem, oracle, schedule, cfg)
    } else {
        improve_schedule_reference(problem, oracle, schedule, cfg)
    }
}

/// The reference implementation: full (VM, host) rescan after every
/// accepted move. Kept callable at any size — it is the oracle the
/// incremental path is property-tested against and the baseline the
/// scaling bench times.
pub fn improve_schedule_reference(
    problem: &Problem,
    oracle: &dyn QosOracle,
    schedule: Schedule,
    cfg: &LocalSearchConfig,
) -> (Schedule, usize) {
    let _span = pamdc_obs::span!("localsearch");
    let mut eval = ScheduleEvaluator::new(problem, oracle, &schedule);
    let mut moves = 0;
    // Candidates that cleared the gain threshold; all but the applied
    // ones count as rejected. Tallied locally, flushed once — the inner
    // loop pays one integer add.
    let mut cleared: u64 = 0;

    while moves < cfg.max_moves {
        let mut best: Option<(usize, usize, f64)> = None; // (vm, host, gain)
        for vi in 0..problem.vms.len() {
            let from = eval.host_of(vi);
            for (hi, host) in problem.hosts.iter().enumerate() {
                if hi == from {
                    continue;
                }
                // Hard feasibility: a move that overcommits the
                // destination's RAM is not a candidate at any gain —
                // memory does not contend, it evicts. (The headroom
                // guard below subsumes this at its default 45%, but the
                // constraint must hold under any configuration.)
                if !eval.move_fits_memory(vi, hi) {
                    continue;
                }
                // Headroom guard on the destination.
                let mut after = eval.host_total(hi);
                after += *eval.demand(vi);
                after.cpu += host.virt_overhead_cpu_per_vm;
                if after.dominant_share(&host.capacity) > cfg.max_util_after_move {
                    continue;
                }
                let gain = eval.move_gain(vi, hi);
                if gain > cfg.min_gain_eur {
                    cleared += 1;
                    if best.as_ref().is_none_or(|&(_, _, bg)| gain > bg) {
                        best = Some((vi, hi, gain));
                    }
                }
            }
        }
        match best {
            Some((vi, hi, _)) => {
                eval.apply_move(vi, hi);
                moves += 1;
            }
            None => break,
        }
    }
    pamdc_obs::metrics::add(pamdc_obs::Counter::LocalsearchMovesAccepted, moves as u64);
    pamdc_obs::metrics::add(
        pamdc_obs::Counter::LocalsearchMovesRejected,
        cleared.saturating_sub(moves as u64),
    );
    (eval.schedule(), moves)
}

/// Work tallies of one incremental run, flushed into the metrics
/// registry once at the end.
#[derive(Default)]
struct IncStats {
    /// `move_gain` evaluations.
    rescored: u64,
    /// Gains that cleared the acceptance threshold.
    cleared: u64,
    /// Full per-VM shortlist rebuilds.
    vm_rescans: u64,
    /// Candidate-index host re-keyings.
    index_updates: u64,
    /// Groups scored through the near-equivalence relaxation.
    near_groups: u64,
}

/// Incremental steepest ascent: per-VM best-candidate maintenance plus
/// index-shortlisted rescans. Bit-identical to
/// [`improve_schedule_reference`] on any input (property-tested); the
/// work counters differ because the paths genuinely do different work.
pub fn improve_schedule_incremental(
    problem: &Problem,
    oracle: &dyn QosOracle,
    schedule: Schedule,
    cfg: &LocalSearchConfig,
) -> (Schedule, usize) {
    let _span = pamdc_obs::span!("localsearch");
    let mut eval = ScheduleEvaluator::new(problem, oracle, &schedule);
    let n_vms = problem.vms.len();
    let mode = match cfg.tuning.near_top_k {
        None => IndexMode::Exact,
        Some(k) => IndexMode::Near { top_k: k.max(1) },
    };
    let mut index = CandidateIndex::new_with_mode(problem, eval.raw_demands(), eval.counts(), mode);
    let mut stats = IncStats::default();

    // best[vi] = the VM's best qualifying move (destination, gain):
    // passes the memory and headroom guards, clears the gain threshold,
    // ties broken toward the lowest host index — exactly the candidate
    // the reference scan would keep for that VM.
    let mut best: Vec<Option<(usize, f64)>> = (0..n_vms)
        .map(|vi| rescan_vm(problem, &eval, &index, cfg, vi, &mut stats))
        .collect();

    let mut moves = 0usize;
    while moves < cfg.max_moves {
        // Steepest candidate overall; ties toward the lowest VM index
        // reproduce the reference scan's first-strict-maximum pick.
        let mut winner: Option<(usize, usize, f64)> = None;
        for (vi, slot) in best.iter().enumerate() {
            if let Some((hi, g)) = *slot {
                if winner.as_ref().is_none_or(|&(_, _, wg)| g > wg) {
                    winner = Some((vi, hi, g));
                }
            }
        }
        let Some((vi, to, _)) = winner else { break };
        let from = eval.host_of(vi);
        eval.apply_move(vi, to);
        moves += 1;
        index.update_host(problem, from, eval.raw_demands()[from], eval.counts()[from]);
        index.update_host(problem, to, eval.raw_demands()[to], eval.counts()[to]);
        stats.index_updates += 2;

        // (1) VMs now resident on the touched hosts (including the moved
        // one): their cached revenue changed, so all their gains are
        // stale — rebuild their shortlists.
        let mut touched: Vec<usize> = eval.residents(from).to_vec();
        touched.extend_from_slice(eval.residents(to));
        for &w in &touched {
            best[w] = rescan_vm(problem, &eval, &index, cfg, w, &mut stats);
        }

        // (2) Every other VM: only its candidates *toward* the touched
        // hosts changed. A stored best on an untouched host is still the
        // exact maximum over untouched destinations (their gains are
        // bit-unchanged), so merging the two recomputed candidates keeps
        // it exact; a stored best *on* a touched host leaves the
        // untouched maximum unknown, forcing a full rescan.
        for (w, slot) in best.iter_mut().enumerate() {
            let wh = eval.host_of(w);
            if wh == from || wh == to {
                continue;
            }
            if let Some((bh, _)) = *slot {
                if bh == from || bh == to {
                    *slot = rescan_vm(problem, &eval, &index, cfg, w, &mut stats);
                    continue;
                }
            }
            for h in [from, to] {
                if h != wh {
                    if let Some(g) = qualified_gain(problem, &eval, cfg, w, h, &mut stats) {
                        merge(slot, h, g);
                    }
                }
            }
        }
    }

    pamdc_obs::metrics::add(pamdc_obs::Counter::LocalsearchMovesAccepted, moves as u64);
    pamdc_obs::metrics::add(
        pamdc_obs::Counter::LocalsearchMovesRejected,
        stats.cleared.saturating_sub(moves as u64),
    );
    pamdc_obs::metrics::add(
        pamdc_obs::Counter::LocalsearchCandidatesRescored,
        stats.rescored,
    );
    pamdc_obs::metrics::add(pamdc_obs::Counter::LocalsearchVmRescans, stats.vm_rescans);
    pamdc_obs::metrics::add(
        pamdc_obs::Counter::LocalsearchIndexUpdates,
        stats.index_updates,
    );
    if stats.near_groups > 0 {
        pamdc_obs::metrics::add(
            pamdc_obs::Counter::IndexNearShortlistHits,
            stats.near_groups,
        );
    }
    (eval.schedule(), moves)
}

/// Keeps `slot` holding the maximum-gain candidate, ties toward the
/// lowest host index — the winner the reference's ascending strict-`>`
/// scan keeps.
fn merge(slot: &mut Option<(usize, f64)>, hi: usize, gain: f64) {
    let replace = match slot {
        None => true,
        Some((bh, bg)) => gain > *bg || (gain == *bg && hi < *bh),
    };
    if replace {
        *slot = Some((hi, gain));
    }
}

/// Full guard chain for one (VM, destination) pair, in the reference
/// loop's order: memory, headroom, then the gain threshold.
fn qualified_gain(
    problem: &Problem,
    eval: &ScheduleEvaluator,
    cfg: &LocalSearchConfig,
    vi: usize,
    hi: usize,
    stats: &mut IncStats,
) -> Option<f64> {
    if !eval.move_fits_memory(vi, hi) {
        return None;
    }
    let host = &problem.hosts[hi];
    let mut after = eval.host_total(hi);
    after += *eval.demand(vi);
    after.cpu += host.virt_overhead_cpu_per_vm;
    if after.dominant_share(&host.capacity) > cfg.max_util_after_move {
        return None;
    }
    gain_only(eval, cfg, vi, hi, stats)
}

/// The gain threshold alone — for destinations whose guards were already
/// settled group-wide.
fn gain_only(
    eval: &ScheduleEvaluator,
    cfg: &LocalSearchConfig,
    vi: usize,
    hi: usize,
    stats: &mut IncStats,
) -> Option<f64> {
    stats.rescored += 1;
    let gain = eval.move_gain(vi, hi);
    if gain > cfg.min_gain_eur {
        stats.cleared += 1;
        Some(gain)
    } else {
        None
    }
}

/// Rebuilds one VM's best qualifying candidate through the index
/// shortlist. Exact mode skips guard-failing groups with one check
/// (memory fit, headroom and — for empty groups — the gain itself are
/// group-uniform) and scores occupied groups member-by-member; near mode
/// scores up to `top_k` members per group with per-member guards.
fn rescan_vm(
    problem: &Problem,
    eval: &ScheduleEvaluator,
    index: &CandidateIndex,
    cfg: &LocalSearchConfig,
    vi: usize,
    stats: &mut IncStats,
) -> Option<(usize, f64)> {
    stats.vm_rescans += 1;
    let from = eval.host_of(vi);
    // The one member whose gain differs within an empty group: the VM's
    // original (pre-round) host carries no migration term. `None` when
    // the VM is homeless or its home is off-problem — then no member is
    // special.
    let orig = problem.vms[vi]
        .current_pm
        .and_then(|pm| problem.host_index(pm));
    let demand = eval.demand(vi);
    let mut best: Option<(usize, f64)> = None;

    // The bucket range scan is only a sound prefilter while the headroom
    // cap keeps destinations within capacity: a group is range-skipped
    // only when the demand overflows its members' free capacity, which
    // implies a dominant share above 1.0. A cap above 1.0 admits such
    // destinations, so fall back to scanning every group.
    let scan_all = cfg.max_util_after_move > 1.0;

    let mut scan = |members: &[usize]| {
        match index.mode() {
            IndexMode::Exact => {
                // Guards are group-uniform (same class, count and demand
                // bits): one check settles the whole group. `from` may
                // serve as the probe — its guard answer matches its
                // twins' — but is never a destination.
                let probe = members[0];
                if !eval.move_fits_memory(vi, probe) {
                    return;
                }
                let host = &problem.hosts[probe];
                let mut after = eval.host_total(probe);
                after += *demand;
                after.cpu += host.virt_overhead_cpu_per_vm;
                if after.dominant_share(&host.capacity) > cfg.max_util_after_move {
                    return;
                }
                if eval.counts()[probe] == 0 && eval.residents(probe).is_empty() {
                    // Empty group: every member's gain is the same bits,
                    // except the VM's original host (no migration term).
                    // `from` holds the VM, so it is never in this group.
                    if let Some(rep) = members.iter().copied().find(|&hi| Some(hi) != orig) {
                        if let Some(g) = gain_only(eval, cfg, vi, rep, stats) {
                            merge(&mut best, rep, g);
                        }
                    }
                    if let Some(oh) = orig {
                        if members.binary_search(&oh).is_ok() {
                            if let Some(g) = gain_only(eval, cfg, vi, oh, stats) {
                                merge(&mut best, oh, g);
                            }
                        }
                    }
                } else {
                    // Occupied group: the destination's residents are
                    // re-scored inside `move_gain`, so gains differ per
                    // member — score each.
                    for &hi in members {
                        if hi == from {
                            continue;
                        }
                        if let Some(g) = gain_only(eval, cfg, vi, hi, stats) {
                            merge(&mut best, hi, g);
                        }
                    }
                }
            }
            IndexMode::Near { top_k } => {
                // Members only share buckets, not bits: per-member
                // guards, bounded to the first `top_k` members.
                stats.near_groups += 1;
                for &hi in members.iter().filter(|&&hi| hi != from).take(top_k) {
                    if let Some(g) = qualified_gain(problem, eval, cfg, vi, hi, stats) {
                        merge(&mut best, hi, g);
                    }
                }
            }
        }
    };

    if scan_all {
        for members in index.all_groups() {
            scan(members);
        }
    } else {
        for members in index.fitting_groups(demand) {
            scan(members);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::TrueOracle;
    use crate::problem::synthetic::problem;
    use crate::profit::evaluate_schedule;
    use pamdc_infra::ids::PmId;

    #[test]
    fn consolidates_idle_spread_for_energy() {
        // Two feather-light VMs spread over two same-DC hosts with local
        // clients: merging them empties a host and saves its idle draw.
        let mut p = problem(2, 8, 10.0);
        let home = p.hosts[0].location;
        for vm in &mut p.vms {
            for f in &mut vm.flows {
                f.source = home;
            }
        }
        // VM1 starts on host 4 (host 0's same-DC twin), both powered.
        p.vms[1].current_pm = Some(PmId(4));
        p.hosts[4].powered_on = true;
        p.hosts[4].boot_penalty = pamdc_simcore::time::SimDuration::ZERO;
        let o = TrueOracle::new();
        let spread = Schedule {
            assignment: vec![PmId(0), PmId(4)],
        };
        let before = evaluate_schedule(&p, &o, &spread);
        let (improved, moves) = improve_schedule(&p, &o, spread, &LocalSearchConfig::default());
        let after = evaluate_schedule(&p, &o, &improved);
        assert!(moves >= 1, "light VMs must consolidate");
        assert!(after.profit_eur > before.profit_eur);
        assert_eq!(after.active_hosts, 1);
    }

    #[test]
    fn never_decreases_profit() {
        for rps in [20.0, 200.0, 500.0] {
            let p = problem(4, 8, rps);
            let o = TrueOracle::new();
            let start = crate::bestfit::best_fit(&p, &o).schedule;
            let before = evaluate_schedule(&p, &o, &start).profit_eur;
            let (improved, _) = improve_schedule(&p, &o, start, &LocalSearchConfig::default());
            let after = evaluate_schedule(&p, &o, &improved).profit_eur;
            assert!(after >= before - 1e-12, "{after} < {before} at rps {rps}");
        }
    }

    #[test]
    fn leaves_overloaded_spread_alone() {
        // Heavy VMs on distinct hosts: merging would crush SLA, so no
        // move should be accepted.
        let mut p = problem(2, 2, 500.0);
        p.vms[1].current_pm = Some(PmId(1));
        p.hosts[1].powered_on = true;
        p.hosts[1].boot_penalty = pamdc_simcore::time::SimDuration::ZERO;
        let o = TrueOracle::new();
        let spread = Schedule {
            assignment: vec![PmId(0), PmId(1)],
        };
        let (improved, moves) =
            improve_schedule(&p, &o, spread.clone(), &LocalSearchConfig::default());
        assert_eq!(moves, 0);
        assert_eq!(improved, spread);
    }

    #[test]
    fn respects_move_cap() {
        let p = problem(6, 8, 15.0);
        let o = TrueOracle::new();
        let start = crate::baselines::round_robin(&p);
        let cfg = LocalSearchConfig {
            max_moves: 1,
            ..Default::default()
        };
        let (_, moves) = improve_schedule(&p, &o, start, &cfg);
        assert!(moves <= 1);
    }

    #[test]
    fn incremental_matches_reference_on_small_fleets() {
        for rps in [10.0, 120.0, 420.0] {
            let p = problem(6, 12, rps);
            let o = TrueOracle::new();
            let start = crate::baselines::round_robin(&p);
            let cfg = LocalSearchConfig {
                max_moves: 64,
                ..Default::default()
            };
            let (a, am) = improve_schedule_reference(&p, &o, start.clone(), &cfg);
            let (b, bm) = improve_schedule_incremental(&p, &o, start, &cfg);
            assert_eq!(am, bm, "move counts at rps {rps}");
            assert_eq!(a, b, "schedules at rps {rps}");
        }
    }

    #[test]
    fn large_fleets_dispatch_to_the_incremental_path_and_agree() {
        // 80 hosts ≥ the default index_min_hosts: improve_schedule takes
        // the incremental path; the reference must agree bit-for-bit.
        let p = problem(24, 80, 25.0);
        let o = TrueOracle::new();
        let start = crate::baselines::round_robin(&p);
        let (a, am) = improve_schedule(&p, &o, start.clone(), &LocalSearchConfig::default());
        let (b, bm) = improve_schedule_reference(&p, &o, start, &LocalSearchConfig::default());
        assert_eq!(am, bm);
        assert_eq!(a, b);
    }
}
