//! Profit-improving local search — the consolidation pass.
//!
//! Descending Best-Fit places VMs one at a time with marginal profit, so
//! it cannot see gains that only materialize when a host *empties* (its
//! idle draw disappears). The paper's observed behaviour — "when a
//! potential VM move does not bring any improvement in SLA or energy
//! use, the VM either stays in its DC or is consolidated"; "energy
//! consumption pushes for consolidation into the DC with cheapest
//! energy (see the low load moments)" — needs exactly that whole-schedule
//! view.
//!
//! [`improve_schedule`] runs steepest-ascent single-VM relocation over
//! the full objective (which prices emptied hosts correctly and charges
//! migration blackouts), accepting only strictly improving moves.
//! Because every accepted move must beat its own migration penalty, the
//! pass is self-damping — no churn.
//!
//! The objective is maintained incrementally by a
//! [`crate::evaluator::ScheduleEvaluator`]: scoring a candidate move
//! touches only the source and destination hosts (no schedule clone, no
//! full [`crate::profit::evaluate_schedule`] in the inner loop), and the
//! accepted move updates the cached per-host demand in place instead of
//! rebuilding it each iteration.

use crate::evaluator::ScheduleEvaluator;
use crate::oracle::QosOracle;
use crate::problem::{Problem, Schedule};

/// Local-search knobs.
#[derive(Clone, Debug)]
pub struct LocalSearchConfig {
    /// Upper bound on accepted moves per round (safety valve; the search
    /// almost always converges earlier).
    pub max_moves: usize,
    /// Minimum € gain for a move to be accepted (keeps estimate noise
    /// from triggering an exchange).
    pub min_gain_eur: f64,
    /// Consolidation headroom: reject moves that push the destination
    /// host's believed utilisation (dominant share) above this. The
    /// schedule holds for a whole round while load drifts and jitters;
    /// packing to 100% of the *current* estimate trades real SLA for
    /// estimated energy.
    pub max_util_after_move: f64,
}

impl Default for LocalSearchConfig {
    fn default() -> Self {
        LocalSearchConfig {
            max_moves: 16,
            min_gain_eur: 1e-6,
            max_util_after_move: 0.45,
        }
    }
}

/// Steepest-ascent single-VM relocation until no move clears the gain
/// threshold. Returns the improved schedule and the number of moves
/// applied.
pub fn improve_schedule(
    problem: &Problem,
    oracle: &dyn QosOracle,
    schedule: Schedule,
    cfg: &LocalSearchConfig,
) -> (Schedule, usize) {
    let _span = pamdc_obs::span!("localsearch");
    let mut eval = ScheduleEvaluator::new(problem, oracle, &schedule);
    let mut moves = 0;
    // Candidates that cleared the gain threshold; all but the applied
    // ones count as rejected. Tallied locally, flushed once — the inner
    // loop pays one integer add.
    let mut cleared: u64 = 0;

    while moves < cfg.max_moves {
        let mut best: Option<(usize, usize, f64)> = None; // (vm, host, gain)
        for vi in 0..problem.vms.len() {
            let from = eval.host_of(vi);
            for (hi, host) in problem.hosts.iter().enumerate() {
                if hi == from {
                    continue;
                }
                // Hard feasibility: a move that overcommits the
                // destination's RAM is not a candidate at any gain —
                // memory does not contend, it evicts. (The headroom
                // guard below subsumes this at its default 45%, but the
                // constraint must hold under any configuration.)
                if !eval.move_fits_memory(vi, hi) {
                    continue;
                }
                // Headroom guard on the destination.
                let mut after = eval.host_total(hi);
                after += *eval.demand(vi);
                after.cpu += host.virt_overhead_cpu_per_vm;
                if after.dominant_share(&host.capacity) > cfg.max_util_after_move {
                    continue;
                }
                let gain = eval.move_gain(vi, hi);
                if gain > cfg.min_gain_eur {
                    cleared += 1;
                    if best.as_ref().is_none_or(|&(_, _, bg)| gain > bg) {
                        best = Some((vi, hi, gain));
                    }
                }
            }
        }
        match best {
            Some((vi, hi, _)) => {
                eval.apply_move(vi, hi);
                moves += 1;
            }
            None => break,
        }
    }
    pamdc_obs::metrics::add(pamdc_obs::Counter::LocalsearchMovesAccepted, moves as u64);
    pamdc_obs::metrics::add(
        pamdc_obs::Counter::LocalsearchMovesRejected,
        cleared.saturating_sub(moves as u64),
    );
    (eval.schedule(), moves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::TrueOracle;
    use crate::problem::synthetic::problem;
    use crate::profit::evaluate_schedule;
    use pamdc_infra::ids::PmId;

    #[test]
    fn consolidates_idle_spread_for_energy() {
        // Two feather-light VMs spread over two same-DC hosts with local
        // clients: merging them empties a host and saves its idle draw.
        let mut p = problem(2, 8, 10.0);
        let home = p.hosts[0].location;
        for vm in &mut p.vms {
            for f in &mut vm.flows {
                f.source = home;
            }
        }
        // VM1 starts on host 4 (host 0's same-DC twin), both powered.
        p.vms[1].current_pm = Some(PmId(4));
        p.hosts[4].powered_on = true;
        p.hosts[4].boot_penalty = pamdc_simcore::time::SimDuration::ZERO;
        let o = TrueOracle::new();
        let spread = Schedule {
            assignment: vec![PmId(0), PmId(4)],
        };
        let before = evaluate_schedule(&p, &o, &spread);
        let (improved, moves) = improve_schedule(&p, &o, spread, &LocalSearchConfig::default());
        let after = evaluate_schedule(&p, &o, &improved);
        assert!(moves >= 1, "light VMs must consolidate");
        assert!(after.profit_eur > before.profit_eur);
        assert_eq!(after.active_hosts, 1);
    }

    #[test]
    fn never_decreases_profit() {
        for rps in [20.0, 200.0, 500.0] {
            let p = problem(4, 8, rps);
            let o = TrueOracle::new();
            let start = crate::bestfit::best_fit(&p, &o).schedule;
            let before = evaluate_schedule(&p, &o, &start).profit_eur;
            let (improved, _) = improve_schedule(&p, &o, start, &LocalSearchConfig::default());
            let after = evaluate_schedule(&p, &o, &improved).profit_eur;
            assert!(after >= before - 1e-12, "{after} < {before} at rps {rps}");
        }
    }

    #[test]
    fn leaves_overloaded_spread_alone() {
        // Heavy VMs on distinct hosts: merging would crush SLA, so no
        // move should be accepted.
        let mut p = problem(2, 2, 500.0);
        p.vms[1].current_pm = Some(PmId(1));
        p.hosts[1].powered_on = true;
        p.hosts[1].boot_penalty = pamdc_simcore::time::SimDuration::ZERO;
        let o = TrueOracle::new();
        let spread = Schedule {
            assignment: vec![PmId(0), PmId(1)],
        };
        let (improved, moves) =
            improve_schedule(&p, &o, spread.clone(), &LocalSearchConfig::default());
        assert_eq!(moves, 0);
        assert_eq!(improved, spread);
    }

    #[test]
    fn respects_move_cap() {
        let p = problem(6, 8, 15.0);
        let o = TrueOracle::new();
        let start = crate::baselines::round_robin(&p);
        let cfg = LocalSearchConfig {
            max_moves: 1,
            ..Default::default()
        };
        let (_, moves) = improve_schedule(&p, &o, start, &cfg);
        assert!(moves <= 1);
    }
}
