//! The scheduling problem — the parameters of the paper's Figure 3
//! mathematical program, snapshotted for one scheduling round.
//!
//! A [`Problem`] is immutable input: the VMs to (re)place with their load
//! and SLA terms, the candidate hosts with their capacities, power curves
//! and energy prices, the network, the billing policy and the horizon
//! being optimized. Schedulers return a [`Schedule`] (the program's
//! output variable `Schedule[PM, VM]`); they never mutate the world.

use pamdc_econ::billing::BillingPolicy;
use pamdc_infra::gateway::FlowDemand;
use pamdc_infra::ids::{DcId, LocationId, PmId, VmId};
use pamdc_infra::network::NetworkModel;
use pamdc_infra::power::PowerModel;
use pamdc_infra::resources::Resources;
use pamdc_perf::demand::{OfferedLoad, VmPerfProfile};
use pamdc_perf::sla::SlaFunction;
use pamdc_simcore::time::SimDuration;
use std::sync::{Arc, OnceLock};

/// One VM in the round.
#[derive(Clone, Debug)]
pub struct VmInfo {
    /// World identifier.
    pub id: VmId,
    /// Aggregated offered load for the coming period (the scheduler's
    /// forecast — typically "same as the last window").
    pub load: OfferedLoad,
    /// Per-region flow mix (for transport-latency weighting).
    pub flows: Vec<FlowDemand>,
    /// Contract terms.
    pub sla: SlaFunction,
    /// Image size, MB (migration cost).
    pub image_size_mb: f64,
    /// Performance constants.
    pub perf: VmPerfProfile,
    /// Where the VM runs now (`None` = entering the system) — the
    /// program's `pastSched`.
    pub current_pm: Option<PmId>,
    /// Location of the current host (needed to price a migration even
    /// when that host is not among this round's candidates).
    pub current_location: Option<LocationId>,
    /// Observed mean usage over the last monitoring window — what plain
    /// Best-Fit sizes by.
    pub observed_usage: Resources,
}

/// One candidate host in the round.
#[derive(Clone, Debug)]
pub struct HostInfo {
    /// World identifier.
    pub id: PmId,
    /// Its datacenter.
    pub dc: DcId,
    /// Its location (= its DC's).
    pub location: LocationId,
    /// Schedulable capacity.
    pub capacity: Resources,
    /// Power curve (for marginal-energy pricing; shared, not cloned,
    /// across rounds).
    pub power: Arc<PowerModel>,
    /// Electricity tariff, €/kWh.
    pub energy_eur_kwh: f64,
    /// Hypervisor CPU overhead per hosted VM.
    pub virt_overhead_cpu_per_vm: f64,
    /// Demand already committed by VMs **not** part of this round
    /// (well-consolidated residents the filter kept out), including their
    /// hypervisor overhead.
    pub fixed_demand: Resources,
    /// Number of resident VMs outside the round.
    pub fixed_vm_count: usize,
    /// Whether the host is currently powered (placing onto a cold host
    /// pays its idle power for the whole horizon).
    pub powered_on: bool,
    /// Remaining boot time before this host can serve (zero when on).
    /// A VM migrated onto a booting host is blacked out until the boot
    /// completes, and the profit function must know it.
    pub boot_penalty: SimDuration,
}

impl HostInfo {
    /// Capacity still uncommitted after the fixed residents.
    pub fn free_after_fixed(&self) -> Resources {
        self.capacity.saturating_sub(&self.fixed_demand)
    }
}

/// Lazily built dense `PmId → hosts-index` map. Every consumer of
/// [`Problem::host_index`] (schedule validation, per-VM current-host
/// resolution in Best-Fit, believed-totals construction) used to pay a
/// linear scan per lookup; the cache makes the first lookup O(hosts)
/// and every later one O(1).
///
/// Host ids are dense cluster indices, so a flat vector indexed by
/// `PmId::index()` suffices (`usize::MAX` marks ids absent from the
/// round). Cloning a [`Problem`] resets the cache — the clone may be
/// edited (the hierarchical round rewrites `current_pm`s, tests rewire
/// hosts) before its first lookup, so inheriting a built map would risk
/// staleness for no measurable win.
#[derive(Debug, Default)]
pub struct HostIndexCache(OnceLock<Vec<usize>>);

impl Clone for HostIndexCache {
    fn clone(&self) -> Self {
        HostIndexCache(OnceLock::new())
    }
}

/// One scheduling round's full input.
#[derive(Clone, Debug)]
pub struct Problem {
    /// VMs to place.
    pub vms: Vec<VmInfo>,
    /// Candidate hosts.
    pub hosts: Vec<HostInfo>,
    /// The provider network (latencies, migration durations). Shared:
    /// building a round's problem bumps a refcount instead of cloning
    /// the latency matrix.
    pub net: Arc<NetworkModel>,
    /// Pricing policy (shared like [`Problem::net`]).
    pub billing: Arc<BillingPolicy>,
    /// The period the schedule will hold for (the paper reschedules
    /// every 10 minutes).
    pub horizon: SimDuration,
    /// Hysteresis: a challenger host must beat the current host's profit
    /// by at least this much (€) before a migration is worth the churn.
    /// Zero disables stickiness.
    pub stickiness_eur: f64,
    /// Lazily built id→index map backing [`Problem::host_index`].
    /// Constructed with `Default::default()`; do not reorder or re-id
    /// `hosts` after the first `host_index` call on a given instance.
    pub host_index_cache: HostIndexCache,
}

impl Problem {
    /// Index of a host by id — O(1) after the first call builds the
    /// dense map (see [`HostIndexCache`]).
    pub fn host_index(&self, pm: PmId) -> Option<usize> {
        let map = self.host_index_cache.0.get_or_init(|| {
            let len = self
                .hosts
                .iter()
                .map(|h| h.id.index() + 1)
                .max()
                .unwrap_or(0);
            let mut map = vec![usize::MAX; len];
            for (hi, h) in self.hosts.iter().enumerate() {
                map[h.id.index()] = hi;
            }
            map
        });
        map.get(pm.index()).copied().filter(|&hi| hi != usize::MAX)
    }

    /// Index of a VM by id.
    pub fn vm_index(&self, vm: VmId) -> Option<usize> {
        self.vms.iter().position(|v| v.id == vm)
    }
}

/// A scheduler's answer: host choice per problem-VM (same indexing as
/// [`Problem::vms`]).
#[derive(Clone, Debug, PartialEq)]
pub struct Schedule {
    /// Chosen host per VM (every VM must be placed — constraint 1 of the
    /// program).
    pub assignment: Vec<PmId>,
}

impl Schedule {
    /// How many VMs changed host relative to their `current_pm`
    /// (`Migr[i]` of the program; entering VMs don't count).
    pub fn migration_count(&self, problem: &Problem) -> usize {
        self.assignment
            .iter()
            .zip(&problem.vms)
            .filter(|(&to, vm)| vm.current_pm.is_some_and(|cur| cur != to))
            .count()
    }

    /// Checks constraint 1 (every VM exactly one host, trivially true by
    /// construction) and that every chosen host exists in the problem.
    pub fn validate(&self, problem: &Problem) {
        assert_eq!(self.assignment.len(), problem.vms.len(), "one host per VM");
        for &pm in &self.assignment {
            assert!(
                problem.host_index(pm).is_some(),
                "{pm} not a candidate host"
            );
        }
    }

    /// Aggregated demand per problem-host index under a demand function.
    pub fn demand_per_host(
        &self,
        problem: &Problem,
        demand_of: impl Fn(&VmInfo) -> Resources,
    ) -> Vec<Resources> {
        let mut per_host: Vec<Resources> = problem.hosts.iter().map(|h| h.fixed_demand).collect();
        let mut counts: Vec<usize> = vec![0; problem.hosts.len()];
        for (vm, &pm) in problem.vms.iter().zip(&self.assignment) {
            let hi = problem.host_index(pm).expect("validated schedule");
            per_host[hi] += demand_of(vm);
            counts[hi] += 1;
        }
        for (hi, host) in problem.hosts.iter().enumerate() {
            per_host[hi].cpu += host.virt_overhead_cpu_per_vm * counts[hi] as f64;
        }
        per_host
    }
}

/// Synthetic problem instances for tests, benches and scaling studies.
pub mod synthetic {
    use super::*;
    use pamdc_infra::network::City;
    use pamdc_infra::pm::MachineSpec;

    /// A problem with `n_hosts` Atom hosts across the four paper DCs
    /// (round-robin, so hosts `i` and `i+4` are twins in one DC) and
    /// `n_vms` identical web VMs, all currently on host 0, each loaded at
    /// `rps` from its home region (`i % 4`).
    pub fn problem(n_vms: usize, n_hosts: usize, rps: f64) -> Problem {
        let spec = MachineSpec::atom();
        let hosts = (0..n_hosts)
            .map(|i| {
                let city = City::ALL[i % 4];
                HostInfo {
                    id: PmId::from_index(i),
                    dc: DcId::from_index(i % 4),
                    location: city.location(),
                    capacity: spec.capacity,
                    power: spec.power.clone(),
                    energy_eur_kwh: pamdc_econ::prices::paper_energy_price(city),
                    virt_overhead_cpu_per_vm: spec.virt_overhead_cpu_per_vm,
                    fixed_demand: Resources::ZERO,
                    fixed_vm_count: 0,
                    powered_on: i == 0,
                    boot_penalty: if i == 0 {
                        SimDuration::ZERO
                    } else {
                        SimDuration::from_secs(120)
                    },
                }
            })
            .collect();
        let vms = (0..n_vms)
            .map(|i| {
                let home = City::ALL[i % 4].location();
                let load = OfferedLoad {
                    rps,
                    kb_in_per_req: 0.5,
                    kb_out_per_req: 4.0,
                    cpu_ms_per_req: 6.0,
                    backlog: 0.0,
                };
                VmInfo {
                    id: VmId::from_index(i),
                    load,
                    flows: vec![FlowDemand {
                        source: home,
                        req_per_sec: rps,
                        kb_per_req: 4.0,
                        cpu_ms_per_req: 6.0,
                    }],
                    sla: SlaFunction::paper(),
                    image_size_mb: 2048.0,
                    perf: VmPerfProfile::default(),
                    current_pm: Some(PmId(0)),
                    current_location: Some(City::ALL[0].location()),
                    observed_usage: pamdc_perf::demand::required_resources(
                        &load,
                        &VmPerfProfile::default(),
                        600.0,
                    ),
                }
            })
            .collect();
        Problem {
            vms,
            hosts,
            net: Arc::new(NetworkModel::paper()),
            billing: Arc::new(BillingPolicy::default()),
            horizon: SimDuration::from_mins(10),
            stickiness_eur: 0.0,
            host_index_cache: Default::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::synthetic::problem;
    use super::*;

    #[test]
    fn indices_resolve() {
        let p = problem(3, 4, 50.0);
        assert_eq!(p.host_index(PmId(2)), Some(2));
        assert_eq!(p.host_index(PmId(99)), None);
        assert_eq!(p.vm_index(VmId(1)), Some(1));
    }

    #[test]
    fn host_index_handles_sparse_and_reversed_ids() {
        // Reduced sub-problems keep original (non-contiguous) PmIds in
        // arbitrary positions; the dense map must not assume id == index.
        let mut p = problem(1, 3, 50.0);
        p.hosts[0].id = PmId(7);
        p.hosts[1].id = PmId(2);
        p.hosts[2].id = PmId(0);
        assert_eq!(p.host_index(PmId(7)), Some(0));
        assert_eq!(p.host_index(PmId(2)), Some(1));
        assert_eq!(p.host_index(PmId(0)), Some(2));
        for absent in [1u32, 3, 4, 5, 6, 8, 1000] {
            assert_eq!(p.host_index(PmId(absent)), None);
        }
    }

    #[test]
    fn host_index_cache_resets_on_clone() {
        let mut p = problem(1, 2, 50.0);
        assert_eq!(p.host_index(PmId(1)), Some(1)); // builds the cache
        let mut q = p.clone();
        q.hosts.swap(0, 1); // edit the clone before its first lookup
        assert_eq!(q.host_index(PmId(1)), Some(0));
        assert_eq!(q.host_index(PmId(0)), Some(1));
        // The original's cache is untouched.
        assert_eq!(p.host_index(PmId(1)), Some(1));
        // Mutating host *fields* (not ids/order) keeps the cache valid.
        p.hosts[0].energy_eur_kwh *= 2.0;
        assert_eq!(p.host_index(PmId(0)), Some(0));
    }

    #[test]
    fn migration_count_ignores_stay_and_new() {
        let mut p = problem(3, 4, 50.0);
        p.vms[2].current_pm = None; // entering VM
        let s = Schedule {
            assignment: vec![PmId(0), PmId(1), PmId(2)],
        };
        // vm0 stays, vm1 moves, vm2 enters (not a migration).
        assert_eq!(s.migration_count(&p), 1);
    }

    #[test]
    fn demand_per_host_adds_overhead_and_fixed() {
        let mut p = problem(2, 2, 50.0);
        p.hosts[1].fixed_demand = Resources::new(30.0, 256.0, 0.0, 0.0);
        let s = Schedule {
            assignment: vec![PmId(1), PmId(1)],
        };
        let d = s.demand_per_host(&p, |vm| vm.observed_usage);
        assert_eq!(d[0], Resources::ZERO);
        let expect_cpu =
            30.0 + 2.0 * p.vms[0].observed_usage.cpu + 2.0 * p.hosts[1].virt_overhead_cpu_per_vm;
        assert!((d[1].cpu - expect_cpu).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "not a candidate host")]
    fn validate_rejects_unknown_host() {
        let p = problem(1, 2, 50.0);
        Schedule {
            assignment: vec![PmId(9)],
        }
        .validate(&p);
    }

    #[test]
    fn free_after_fixed_clamps() {
        let mut p = problem(1, 1, 50.0);
        p.hosts[0].fixed_demand = Resources::new(1000.0, 0.0, 0.0, 0.0);
        let free = p.hosts[0].free_after_fixed();
        assert_eq!(free.cpu, 0.0);
        assert!(free.mem_mb > 0.0);
    }
}
