//! # pamdc-sched — the paper's scheduling stack
//!
//! The mathematical model of Figure 3 ([`problem`]), its objective
//! function ([`profit`]), the Descending Best-Fit heuristic of
//! Algorithm 1 ([`bestfit`]), the information sources that differentiate
//! BF / BF-OB / BF-ML ([`oracle`]), an exact branch-and-bound reference
//! solver reproducing the "MILP is too slow" observation ([`exact`]),
//! the comparison baselines ([`baselines`]), the §IV-C candidate filters
//! ([`filter`]), the incremental schedule evaluator that makes the
//! consolidation pass cheap ([`evaluator`]), the bucketed free-capacity
//! candidate index that keeps Best-Fit sub-linear on planet-scale fleets
//! ([`index`]) and the two-layer
//! hierarchical multi-DC scheduler that is the paper's headline
//! contribution ([`hierarchical`]).

pub mod baselines;
pub mod bestfit;
pub mod evaluator;
pub mod exact;
pub mod filter;
pub mod hierarchical;
pub mod index;
pub mod localsearch;
pub mod oracle;
pub mod problem;
pub mod profit;

/// Common imports.
pub mod prelude {
    pub use crate::baselines::{
        cheapest_energy, first_fit, follow_the_load, round_robin, static_schedule,
    };
    pub use crate::bestfit::{
        best_fit, best_fit_full_scan, best_fit_indexed, best_fit_indexed_near,
        best_fit_with_demands, best_fit_with_demands_tuned, BestFitResult, SchedTuning,
        INDEX_MIN_HOSTS,
    };
    pub use crate::evaluator::ScheduleEvaluator;
    pub use crate::exact::{
        branch_and_bound, branch_and_bound_with_budget, ExactOutcome, ExactResult,
    };
    pub use crate::filter::{
        hosts_worth_offering, hosts_worth_offering_with, reduced_problem, reduced_problem_placed,
        reduced_problem_with_demands, vms_needing_attention, vms_needing_attention_placed,
        vms_needing_attention_with, FilterConfig,
    };
    pub use crate::hierarchical::{hierarchical_round, HierarchicalConfig, RoundStats};
    pub use crate::index::{CandidateIndex, IndexMode};
    pub use crate::localsearch::{
        improve_schedule, improve_schedule_incremental, improve_schedule_reference,
        LocalSearchConfig,
    };
    pub use crate::oracle::{MlOracle, MonitorOracle, QosOracle, TrueOracle};
    pub use crate::problem::{HostInfo, Problem, Schedule, VmInfo};
    pub use crate::profit::{
        evaluate_schedule, marginal_profit, marginal_profit_hoisted, BelievedTotals,
        PlacementScore, PlacementState, ScheduleEval,
    };
}
