//! Baseline scheduling policies the paper compares against (or that its
//! sanity checks exercise).
//!
//! * [`static_schedule`] — the "Static-Global" scenario of Figure 7 /
//!   Table III: VMs never leave their current host; DCs only forward
//!   client traffic.
//! * [`follow_the_load`] — the Figure 5 sanity check: profit reduced to
//!   client proximity only, so each VM chases its dominant load source
//!   around the planet.
//! * [`first_fit`] / [`round_robin`] — classic packing baselines.
//! * [`cheapest_energy`] — consolidate everything toward the lowest
//!   tariff (the degenerate "energy-only" policy, the opposite sanity
//!   check the paper mentions).

use crate::oracle::QosOracle;
use crate::problem::{Problem, Schedule};
use crate::profit::PlacementState;
use pamdc_infra::gateway::weighted_transport_secs;
use pamdc_infra::resources::Resources;

/// Keep every VM where it is. VMs without a current host (entering the
/// system) are first-fit placed near their heaviest load source.
pub fn static_schedule(problem: &Problem, oracle: &dyn QosOracle) -> Schedule {
    let mut state = PlacementState::new(problem);
    let mut assignment = Vec::with_capacity(problem.vms.len());
    for vm in &problem.vms {
        let host_idx = match vm.current_pm.and_then(|pm| problem.host_index(pm)) {
            Some(hi) => hi,
            None => nearest_feasible_host(problem, oracle, &state, vm),
        };
        state.assign(problem, host_idx, oracle.demand(vm));
        assignment.push(problem.hosts[host_idx].id);
    }
    Schedule { assignment }
}

/// Pure client-proximity packing: each VM goes to the feasible host with
/// the lowest request-weighted transport latency (ties: lower host id).
/// Energy and migration costs are deliberately ignored — the paper's
/// "follow the load" sanity check.
pub fn follow_the_load(problem: &Problem, oracle: &dyn QosOracle) -> Schedule {
    let mut state = PlacementState::new(problem);
    let mut assignment = Vec::with_capacity(problem.vms.len());
    for vm in &problem.vms {
        let host_idx = nearest_feasible_host(problem, oracle, &state, vm);
        state.assign(problem, host_idx, oracle.demand(vm));
        assignment.push(problem.hosts[host_idx].id);
    }
    Schedule { assignment }
}

fn nearest_feasible_host(
    problem: &Problem,
    oracle: &dyn QosOracle,
    state: &PlacementState,
    vm: &crate::problem::VmInfo,
) -> usize {
    let demand = oracle.demand(vm);
    let latency =
        |hi: usize| weighted_transport_secs(&vm.flows, problem.hosts[hi].location, &problem.net);
    let feasible: Vec<usize> = (0..problem.hosts.len())
        .filter(|&hi| state.fits(problem, hi, &demand))
        .collect();
    let pool: Vec<usize> = if feasible.is_empty() {
        (0..problem.hosts.len()).collect()
    } else {
        feasible
    };
    pool.into_iter()
        .min_by(|&a, &b| {
            latency(a)
                .partial_cmp(&latency(b))
                .expect("finite")
                .then(a.cmp(&b))
        })
        .expect("at least one host")
}

/// First-Fit: VMs in problem order onto the first host with room.
pub fn first_fit(problem: &Problem, oracle: &dyn QosOracle) -> Schedule {
    let mut state = PlacementState::new(problem);
    let mut assignment = Vec::with_capacity(problem.vms.len());
    for vm in &problem.vms {
        let demand = oracle.demand(vm);
        let host_idx = (0..problem.hosts.len())
            .find(|&hi| state.fits(problem, hi, &demand))
            .unwrap_or(0);
        state.assign(problem, host_idx, demand);
        assignment.push(problem.hosts[host_idx].id);
    }
    Schedule { assignment }
}

/// Round-robin across hosts, ignoring capacity (a deliberately bad
/// spread-everything baseline).
pub fn round_robin(problem: &Problem) -> Schedule {
    let assignment = (0..problem.vms.len())
        .map(|i| problem.hosts[i % problem.hosts.len()].id)
        .collect();
    Schedule { assignment }
}

/// Consolidate toward the cheapest electricity: hosts sorted by tariff,
/// fill each before opening the next.
pub fn cheapest_energy(problem: &Problem, oracle: &dyn QosOracle) -> Schedule {
    let mut host_order: Vec<usize> = (0..problem.hosts.len()).collect();
    host_order.sort_by(|&a, &b| {
        problem.hosts[a]
            .energy_eur_kwh
            .partial_cmp(&problem.hosts[b].energy_eur_kwh)
            .expect("finite tariffs")
            .then(a.cmp(&b))
    });
    let mut state = PlacementState::new(problem);
    let mut assignment = Vec::with_capacity(problem.vms.len());
    for vm in &problem.vms {
        let demand = oracle.demand(vm);
        let host_idx = host_order
            .iter()
            .copied()
            .find(|&hi| state.fits(problem, hi, &demand))
            .unwrap_or(host_order[0]);
        state.assign(problem, host_idx, demand);
        assignment.push(problem.hosts[host_idx].id);
    }
    Schedule { assignment }
}

/// The believed total demand per host of a schedule, for tests.
pub fn packed_demand(
    problem: &Problem,
    oracle: &dyn QosOracle,
    schedule: &Schedule,
) -> Vec<Resources> {
    schedule.demand_per_host(problem, |vm| oracle.demand(vm))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::TrueOracle;
    use crate::problem::synthetic::problem;
    use pamdc_infra::ids::PmId;

    #[test]
    fn static_keeps_everyone_home() {
        let p = problem(4, 4, 100.0);
        let s = static_schedule(&p, &TrueOracle::new());
        assert_eq!(s.assignment, vec![PmId(0); 4]);
        assert_eq!(s.migration_count(&p), 0);
    }

    #[test]
    fn static_places_newcomers() {
        let mut p = problem(2, 4, 100.0);
        p.vms[1].current_pm = None;
        p.vms[1].current_location = None;
        let s = static_schedule(&p, &TrueOracle::new());
        assert_eq!(s.assignment.len(), 2);
        assert_eq!(s.assignment[0], PmId(0));
    }

    #[test]
    fn follow_the_load_goes_to_the_clients() {
        // Fixture VM i has all its clients in city i%4, and host i sits
        // in city i%4: follow-the-load sends each VM to "its" host.
        let p = problem(4, 4, 50.0);
        let s = follow_the_load(&p, &TrueOracle::new());
        assert_eq!(
            s.assignment,
            vec![PmId(0), PmId(1), PmId(2), PmId(3)],
            "each VM must sit with its clients"
        );
    }

    #[test]
    fn follow_the_load_respects_capacity() {
        // 6 heavy VMs all loving host 0's city, but only 4 hosts: the
        // packer must spill to other hosts rather than crush host 0.
        let mut p = problem(6, 4, 400.0);
        for vm in &mut p.vms {
            let home = p.hosts[0].location;
            for f in &mut vm.flows {
                f.source = home;
            }
        }
        let o = TrueOracle::new();
        let s = follow_the_load(&p, &o);
        let per_host = packed_demand(&p, &o, &s);
        // At most one host may be overloaded (the final fallback), and
        // only if nothing fit.
        let overloaded = per_host
            .iter()
            .zip(&p.hosts)
            .filter(|(d, h)| !d.fits_within(&h.capacity))
            .count();
        assert!(overloaded <= 1, "spill must respect capacity: {overloaded}");
    }

    #[test]
    fn first_fit_fills_in_order() {
        let p = problem(3, 4, 50.0);
        let s = first_fit(&p, &TrueOracle::new());
        assert_eq!(s.assignment, vec![PmId(0); 3]);
    }

    #[test]
    fn round_robin_spreads() {
        let p = problem(4, 4, 50.0);
        let s = round_robin(&p);
        assert_eq!(s.assignment, vec![PmId(0), PmId(1), PmId(2), PmId(3)]);
    }

    #[test]
    fn cheapest_energy_prefers_boston() {
        // Boston (host 3 in the fixture) has the lowest tariff.
        let p = problem(2, 4, 50.0);
        let s = cheapest_energy(&p, &TrueOracle::new());
        assert_eq!(s.assignment, vec![PmId(3), PmId(3)]);
    }
}
