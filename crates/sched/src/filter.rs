//! Candidate filtering — the paper's §IV-C scalability optimisations:
//!
//! * "we do not include in the scheduling process VMs and PMs that are
//!   already performing well in a consolidated way";
//! * "the method only considers for scheduling across DC's those virtual
//!   machines that could improve its QoS if moved";
//! * "considering only once identical empty host machines and not
//!   considering almost full hosts that cannot accommodate additional
//!   VM's".

use crate::oracle::QosOracle;
use crate::problem::{HostInfo, Problem, VmInfo};
use crate::profit::BelievedTotals;
use pamdc_infra::gateway::weighted_transport_secs;
use pamdc_infra::ids::{LocationId, PmId};
use pamdc_infra::resources::Resources;

/// Filter thresholds.
#[derive(Clone, Debug)]
pub struct FilterConfig {
    /// VMs whose estimated SLA on their current host is at least this
    /// are "performing well" and left alone by the global round.
    pub sla_keep_threshold: f64,
    /// A flagged VM escalates only when some other host is believed to
    /// improve its SLA by at least this much — the paper's "could
    /// improve its QoS if moved" condition. Prevents latency-limited VMs
    /// (whose SLA is capped by client geography everywhere) from being
    /// reshuffled forever.
    pub min_improvement: f64,
    /// Hosts whose believed free capacity (dominant-share headroom)
    /// falls below this fraction are "almost full" and not offered.
    pub min_headroom_frac: f64,
    /// Deduplicate empty hosts per (DC, capacity signature).
    pub dedupe_empty: bool,
}

impl Default for FilterConfig {
    fn default() -> Self {
        FilterConfig {
            sla_keep_threshold: 0.95,
            min_improvement: 0.02,
            min_headroom_frac: 0.10,
            dedupe_empty: true,
        }
    }
}

/// VM indices whose estimated SLA *in place* is below the keep
/// threshold — the candidates a DC offers to the global scheduler —
/// plus every VM that has no current host.
pub fn vms_needing_attention(
    problem: &Problem,
    oracle: &dyn QosOracle,
    cfg: &FilterConfig,
) -> Vec<usize> {
    let believed = BelievedTotals::from_current_placement(problem, oracle);
    vms_needing_attention_with(problem, oracle, cfg, &believed)
}

/// [`vms_needing_attention`] over shared precomputed believed totals
/// (the hierarchical round computes them once for both filters).
pub fn vms_needing_attention_with(
    problem: &Problem,
    oracle: &dyn QosOracle,
    cfg: &FilterConfig,
    believed: &BelievedTotals,
) -> Vec<usize> {
    let current_host: Vec<Option<usize>> = problem
        .vms
        .iter()
        .map(|vm| vm.current_pm.and_then(|pm| problem.host_index(pm)))
        .collect();
    vms_needing_attention_placed(problem, oracle, cfg, believed, &current_host)
}

/// [`vms_needing_attention_with`] under an explicit per-VM placement
/// (`None` = unplaced): the hierarchical round passes its post-local
/// effective placement instead of cloning the whole `Problem` just to
/// rewrite `current_pm`. `believed` must describe the same placement.
pub fn vms_needing_attention_placed(
    problem: &Problem,
    oracle: &dyn QosOracle,
    cfg: &FilterConfig,
    believed: &BelievedTotals,
    current_host: &[Option<usize>],
) -> Vec<usize> {
    debug_assert_eq!(current_host.len(), problem.vms.len());
    // Believed totals per host under that placement.
    let totals: Vec<Resources> = (0..problem.hosts.len())
        .map(|hi| believed.with_overhead(problem, hi))
        .collect();

    (0..problem.vms.len())
        .filter(|&vi| {
            let vm = &problem.vms[vi];
            match current_host[vi] {
                None => true, // unplaced or hosted off-round: must be handled
                Some(hi) => {
                    let host = &problem.hosts[hi];
                    let transport = weighted_transport_secs(&vm.flows, host.location, &problem.net);
                    let current = oracle.sla(vm, host, &totals[hi], transport);
                    if current >= cfg.sla_keep_threshold {
                        return false;
                    }
                    // "Could improve its QoS if moved": check the best
                    // believed alternative before escalating.
                    let demand = believed.demands[vi];
                    let best_alt = (0..problem.hosts.len())
                        .filter(|&hj| hj != hi)
                        .map(|hj| {
                            let alt = &problem.hosts[hj];
                            let mut total = totals[hj];
                            total += demand;
                            total.cpu += alt.virt_overhead_cpu_per_vm;
                            let tr = weighted_transport_secs(&vm.flows, alt.location, &problem.net);
                            oracle.sla(vm, alt, &total, tr)
                        })
                        .fold(0.0f64, f64::max);
                    best_alt >= current + cfg.min_improvement
                }
            }
        })
        .collect()
}

/// Host indices worth offering: enough believed headroom, with identical
/// empty hosts deduplicated (one representative per DC + capacity
/// signature).
pub fn hosts_worth_offering(
    problem: &Problem,
    oracle: &dyn QosOracle,
    cfg: &FilterConfig,
) -> Vec<usize> {
    let believed = BelievedTotals::from_current_placement(problem, oracle);
    hosts_worth_offering_with(problem, cfg, &believed)
}

/// [`hosts_worth_offering`] over shared precomputed believed totals.
pub fn hosts_worth_offering_with(
    problem: &Problem,
    cfg: &FilterConfig,
    believed: &BelievedTotals,
) -> Vec<usize> {
    // Headroom is judged on raw believed totals (no hypervisor
    // overhead), matching the original filter's accounting.
    let totals = &believed.raw;
    let counts = &believed.counts;

    let mut seen_empty: Vec<(u32, u64)> = Vec::new(); // (dc, capacity hash)
    let mut out = Vec::new();
    for (hi, host) in problem.hosts.iter().enumerate() {
        let free = host.capacity.saturating_sub(&totals[hi]);
        let headroom = 1.0 - totals[hi].dominant_share(&host.capacity);
        if headroom < cfg.min_headroom_frac {
            continue; // almost full
        }
        let empty = counts[hi] == 0 && host.fixed_vm_count == 0;
        if empty && cfg.dedupe_empty {
            let sig = capacity_signature(host);
            if seen_empty.contains(&(host.dc.0, sig)) {
                continue; // identical empty twin already offered
            }
            seen_empty.push((host.dc.0, sig));
        }
        let _ = free;
        out.push(hi);
    }
    out
}

fn capacity_signature(host: &HostInfo) -> u64 {
    // Quantized capacity fingerprint; identical machine models collide
    // (that is the point).
    let q = |x: f64| (x * 100.0).round() as u64;
    q(host.capacity.cpu)
        .wrapping_mul(1_000_003)
        .wrapping_add(q(host.capacity.mem_mb))
        .wrapping_mul(1_000_033)
        .wrapping_add(q(host.capacity.net_in_kbps))
        .wrapping_mul(1_000_037)
        .wrapping_add(q(host.capacity.net_out_kbps))
}

/// Builds the reduced sub-problem over selected VMs and hosts. VMs *not*
/// selected but currently residing on a selected host become part of that
/// host's fixed demand.
pub fn reduced_problem(
    problem: &Problem,
    oracle: &dyn QosOracle,
    vm_indices: &[usize],
    host_indices: &[usize],
) -> (Problem, Vec<usize>) {
    let demands: Vec<Resources> = problem.vms.iter().map(|vm| oracle.demand(vm)).collect();
    reduced_problem_with_demands(problem, &demands, vm_indices, host_indices)
}

/// [`reduced_problem`] over shared precomputed believed demands (one
/// oracle query per VM per round instead of per caller).
pub fn reduced_problem_with_demands(
    problem: &Problem,
    demands: &[Resources],
    vm_indices: &[usize],
    host_indices: &[usize],
) -> (Problem, Vec<usize>) {
    let current_pm: Vec<Option<PmId>> = problem.vms.iter().map(|vm| vm.current_pm).collect();
    let current_location: Vec<Option<LocationId>> =
        problem.vms.iter().map(|vm| vm.current_location).collect();
    reduced_problem_placed(
        problem,
        demands,
        vm_indices,
        host_indices,
        &current_pm,
        &current_location,
    )
}

/// [`reduced_problem_with_demands`] under an explicit per-VM placement:
/// unselected residents fold into fixed demand by their *effective*
/// host, and the cloned round-VMs carry the effective `current_pm` /
/// `current_location` — so the hierarchical round can build its global
/// sub-problem from the post-local placement without cloning and
/// rewriting the whole `Problem` first.
pub fn reduced_problem_placed(
    problem: &Problem,
    demands: &[Resources],
    vm_indices: &[usize],
    host_indices: &[usize],
    current_pm: &[Option<PmId>],
    current_location: &[Option<LocationId>],
) -> (Problem, Vec<usize>) {
    debug_assert_eq!(current_pm.len(), problem.vms.len());
    debug_assert_eq!(current_location.len(), problem.vms.len());
    let selected_vms: std::collections::BTreeSet<usize> = vm_indices.iter().copied().collect();
    let mut hosts: Vec<HostInfo> = host_indices
        .iter()
        .map(|&hi| problem.hosts[hi].clone())
        .collect();

    // Fold unselected residents into fixed demand.
    for vi in 0..problem.vms.len() {
        if selected_vms.contains(&vi) {
            continue;
        }
        if let Some(cur) = current_pm[vi] {
            if let Some(pos) = hosts.iter().position(|h| h.id == cur) {
                let mut d = demands[vi];
                d.cpu += hosts[pos].virt_overhead_cpu_per_vm;
                hosts[pos].fixed_demand += d;
                hosts[pos].fixed_vm_count += 1;
            }
        }
    }

    let vms: Vec<VmInfo> = vm_indices
        .iter()
        .map(|&vi| {
            let mut vm = problem.vms[vi].clone();
            vm.current_pm = current_pm[vi];
            vm.current_location = current_location[vi];
            vm
        })
        .collect();
    (
        Problem {
            vms,
            hosts,
            net: problem.net.clone(),
            billing: problem.billing.clone(),
            horizon: problem.horizon,
            stickiness_eur: problem.stickiness_eur,
            host_index_cache: Default::default(),
        },
        vm_indices.to_vec(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::TrueOracle;
    use crate::problem::synthetic::problem;
    use pamdc_infra::ids::PmId;

    #[test]
    fn happy_vms_are_kept_out() {
        // Light load on host 0 with local clients: everything is fine,
        // nothing needs moving.
        let mut p = problem(2, 4, 20.0);
        let home = p.hosts[0].location;
        for vm in &mut p.vms {
            for f in &mut vm.flows {
                f.source = home;
            }
        }
        let need = vms_needing_attention(&p, &TrueOracle::new(), &FilterConfig::default());
        assert!(need.is_empty(), "light VMs should be left alone: {need:?}");
    }

    #[test]
    fn crushed_vms_raise_their_hands() {
        // 5 heavy VMs piled on host 0: SLA collapses, all become
        // candidates.
        let p = problem(5, 4, 400.0);
        let need = vms_needing_attention(&p, &TrueOracle::new(), &FilterConfig::default());
        assert_eq!(need.len(), 5);
    }

    #[test]
    fn unplaced_vms_always_need_attention() {
        let mut p = problem(2, 4, 20.0);
        p.vms[1].current_pm = None;
        let need = vms_needing_attention(&p, &TrueOracle::new(), &FilterConfig::default());
        assert_eq!(need, vec![1]);
    }

    #[test]
    fn full_hosts_not_offered_and_empty_twins_deduped() {
        // 8 hosts: 0..4 in DCs 0..4, 4..8 duplicates. Host 0 holds all
        // VMs (nearly full); hosts 4..8 are empty twins of 0..4.
        let mut p = problem(4, 8, 350.0);
        for vm in &mut p.vms {
            vm.current_pm = Some(PmId(0));
        }
        let offered = hosts_worth_offering(&p, &TrueOracle::new(), &FilterConfig::default());
        assert!(!offered.contains(&0), "crushed host must not be offered");
        // Empty twins: host 4 shares DC0 with host 0; hosts 1..4 (powered
        // off, empty) each get one representative; their twins 5,6,7 are
        // deduped away.
        assert!(offered.contains(&1) && offered.contains(&2) && offered.contains(&3));
        assert!(
            offered.contains(&4),
            "dc0 still has an empty representative"
        );
        for twin in [5usize, 6, 7] {
            assert!(
                !offered.contains(&twin),
                "twin {twin} should be deduped: {offered:?}"
            );
        }
    }

    #[test]
    fn reduced_problem_folds_residents() {
        let p = problem(3, 2, 100.0);
        let o = TrueOracle::new();
        // Keep only VM 1 in the round; hosts both. VMs 0 and 2 stay as
        // fixed demand on host 0.
        let (sub, mapping) = reduced_problem(&p, &o, &[1], &[0, 1]);
        assert_eq!(sub.vms.len(), 1);
        assert_eq!(mapping, vec![1]);
        assert_eq!(sub.hosts[0].fixed_vm_count, 2);
        assert!(sub.hosts[0].fixed_demand.cpu > 0.0);
        assert_eq!(sub.hosts[1].fixed_vm_count, 0);
    }
}
