//! Incremental schedule evaluation — the consolidation pass's hot path.
//!
//! [`crate::profit::evaluate_schedule`] prices a complete assignment in
//! O(V·H): it rebuilds every host's believed demand, re-estimates every
//! VM's SLA and re-prices every host's energy. The local search used to
//! call it once per *candidate move*, making one consolidation round
//! O(V²·H²) oracle evaluations — exactly the cost §IV-C's filtering is
//! supposed to avoid.
//!
//! [`ScheduleEvaluator`] caches the full decomposition of the current
//! schedule — per-host believed demand, per-VM SLA/revenue/migration/
//! network contributions, per-host energy — and exploits the profit
//! function's locality: relocating one VM only changes
//!
//! * the source and destination hosts' believed totals (and therefore
//!   the SLA and revenue of the VMs *on those two hosts*),
//! * the moved VM's migration and network charges, and
//! * the two hosts' energy terms.
//!
//! So a candidate move is scored by visiting the two affected hosts'
//! residents — O(occupancy) instead of O(V·H) — and scoring allocates
//! nothing. Committing a move updates the cached state in place the same
//! way. The invariant, enforced by `debug_assert!` and by the
//! `evaluator_equivalence` proptest suite: the tracked decomposition
//! always matches what a fresh [`crate::profit::evaluate_schedule`] of
//! the same assignment would produce, to within float-accumulation noise
//! (≪ 1e-9 relative).

use crate::oracle::QosOracle;
use crate::problem::{Problem, Schedule};
use pamdc_infra::gateway::weighted_transport_secs;
use pamdc_infra::resources::Resources;
use pamdc_simcore::time::SimDuration;

/// Cached decomposition of one schedule's profit, supporting O(hosts
/// touched) rescoring of single-VM relocations.
pub struct ScheduleEvaluator<'a> {
    problem: &'a Problem,
    oracle: &'a dyn QosOracle,
    /// Believed demand per VM (oracle queried once).
    demands: Vec<Resources>,
    /// Current host index per VM.
    host_of: Vec<usize>,
    /// VM indices resident on each host (order irrelevant).
    vms_on: Vec<Vec<usize>>,
    /// Believed demand per host **excluding** hypervisor overhead
    /// (fixed residents + assigned VM demands), maintained in place.
    raw_demand: Vec<Resources>,
    /// Round-VMs assigned per host.
    counts: Vec<usize>,
    /// Transport latency per (vm, location) pair, vm-major. Transport
    /// depends on the host only through its location, so caching per
    /// location instead of per host keeps construction O(V·locations)
    /// rather than O(V·H) — the bits read back are identical.
    transport: Vec<f64>,
    /// Location slot per host (index into a VM's `transport` row).
    loc_slot: Vec<usize>,
    /// Width of one VM's `transport` row (max location index + 1).
    n_loc_slots: usize,
    /// Revenue-earning span per host (horizon minus boot blackout).
    available: Vec<SimDuration>,
    /// Cached per-VM terms under the current assignment.
    sla: Vec<f64>,
    revenue: Vec<f64>,
    migration: Vec<f64>,
    network: Vec<f64>,
    /// Cached per-host energy cost under the current assignment.
    energy: Vec<f64>,
    /// Running totals of the cached terms.
    revenue_total: f64,
    migration_total: f64,
    network_total: f64,
    energy_total: f64,
}

impl<'a> ScheduleEvaluator<'a> {
    /// Builds the cache for `schedule` (one full O(V·H) evaluation —
    /// the last one the round needs).
    pub fn new(problem: &'a Problem, oracle: &'a dyn QosOracle, schedule: &Schedule) -> Self {
        schedule.validate(problem);
        let n_vms = problem.vms.len();
        let n_hosts = problem.hosts.len();

        let demands: Vec<Resources> = problem.vms.iter().map(|vm| oracle.demand(vm)).collect();
        let mut host_of = Vec::with_capacity(n_vms);
        let mut vms_on: Vec<Vec<usize>> = vec![Vec::new(); n_hosts];
        let mut raw_demand: Vec<Resources> = problem.hosts.iter().map(|h| h.fixed_demand).collect();
        let mut counts = vec![0usize; n_hosts];
        // Problem::host_index is O(1) after its first call builds the
        // dense id→index map, so paying it per VM is fine.
        for (vi, &pm) in schedule.assignment.iter().enumerate() {
            let hi = problem.host_index(pm).expect("validated schedule");
            host_of.push(hi);
            vms_on[hi].push(vi);
            raw_demand[hi] += demands[vi];
            counts[hi] += 1;
        }

        // One transport latency per (vm, location present in the fleet);
        // absent location slots stay NaN and are never read.
        let loc_slot: Vec<usize> = problem.hosts.iter().map(|h| h.location.index()).collect();
        let n_loc_slots = loc_slot.iter().max().map_or(1, |&m| m + 1);
        let mut loc_at_slot = vec![None; n_loc_slots];
        for host in &problem.hosts {
            loc_at_slot[host.location.index()] = Some(host.location);
        }
        let transport: Vec<f64> = problem
            .vms
            .iter()
            .flat_map(|vm| {
                loc_at_slot.iter().map(|slot| match slot {
                    Some(loc) => weighted_transport_secs(&vm.flows, *loc, &problem.net),
                    None => f64::NAN,
                })
            })
            .collect();
        let available: Vec<SimDuration> = problem
            .hosts
            .iter()
            .map(|h| problem.horizon - h.boot_penalty.min(problem.horizon))
            .collect();

        let mut this = ScheduleEvaluator {
            problem,
            oracle,
            demands,
            host_of,
            vms_on,
            raw_demand,
            counts,
            transport,
            loc_slot,
            n_loc_slots,
            available,
            sla: vec![0.0; n_vms],
            revenue: vec![0.0; n_vms],
            migration: vec![0.0; n_vms],
            network: vec![0.0; n_vms],
            energy: vec![0.0; n_hosts],
            revenue_total: 0.0,
            migration_total: 0.0,
            network_total: 0.0,
            energy_total: 0.0,
        };

        for vi in 0..n_vms {
            let hi = this.host_of[vi];
            let total = this.host_total(hi);
            this.sla[vi] = this.vm_sla(vi, hi, &total);
            this.revenue[vi] = this.vm_revenue(this.sla[vi], hi);
            let (mig, net) = this.vm_move_costs(vi, hi);
            this.migration[vi] = mig;
            this.network[vi] = net;
        }
        for hi in 0..n_hosts {
            this.energy[hi] = this.host_energy(hi, &this.host_total(hi), this.counts[hi]);
        }
        this.revenue_total = this.revenue.iter().sum();
        this.migration_total = this.migration.iter().sum();
        this.network_total = this.network.iter().sum();
        this.energy_total = this.energy.iter().sum();
        this
    }

    /// Net profit of the current assignment, €.
    #[inline]
    pub fn profit_eur(&self) -> f64 {
        self.revenue_total - self.energy_total - self.migration_total - self.network_total
    }

    /// `(revenue, energy, migration, network)` totals, €.
    pub fn components(&self) -> (f64, f64, f64, f64) {
        (
            self.revenue_total,
            self.energy_total,
            self.migration_total,
            self.network_total,
        )
    }

    /// Current host index of a VM.
    #[inline]
    pub fn host_of(&self, vi: usize) -> usize {
        self.host_of[vi]
    }

    /// Cached believed demand of a VM.
    #[inline]
    pub fn demand(&self, vi: usize) -> &Resources {
        &self.demands[vi]
    }

    /// Believed total on a host (fixed + assigned + hypervisor
    /// overhead), matching `PlacementState::host_demand`.
    #[inline]
    pub fn host_total(&self, hi: usize) -> Resources {
        let mut d = self.raw_demand[hi];
        d.cpu += self.problem.hosts[hi].virt_overhead_cpu_per_vm * self.counts[hi] as f64;
        d
    }

    /// Round-VM indices currently resident on a host. The order is an
    /// artifact of `apply_move`'s swap-removes; callers may only rely on
    /// the contents.
    #[inline]
    pub(crate) fn residents(&self, hi: usize) -> &[usize] {
        &self.vms_on[hi]
    }

    /// Believed raw demand per host (fixed residents + assigned VMs,
    /// excluding hypervisor overhead) — the candidate index's input.
    #[inline]
    pub(crate) fn raw_demands(&self) -> &[Resources] {
        &self.raw_demand
    }

    /// Round-VMs assigned per host — the candidate index's input.
    #[inline]
    pub(crate) fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// The current assignment as a [`Schedule`].
    pub fn schedule(&self) -> Schedule {
        Schedule {
            assignment: self
                .host_of
                .iter()
                .map(|&hi| self.problem.hosts[hi].id)
                .collect(),
        }
    }

    /// True when relocating `vi` onto `to` keeps the destination's
    /// believed memory within its RAM capacity. Memory is the one
    /// non-compressible resource — CPU or network overcommit degrades
    /// service, RAM overcommit kills it — so consumers treat this as a
    /// hard feasibility dimension, never a mere penalty. (Hypervisor
    /// overhead is CPU-only, so raw demand is the right accumulator.)
    #[inline]
    pub fn move_fits_memory(&self, vi: usize, to: usize) -> bool {
        const EPS: f64 = 1e-9;
        self.raw_demand[to].mem_mb + self.demands[vi].mem_mb
            <= self.problem.hosts[to].capacity.mem_mb + EPS
    }

    /// Profit change if `vi` were relocated to `to` (no state change,
    /// no allocation). `to` must differ from the VM's current host.
    pub fn move_gain(&self, vi: usize, to: usize) -> f64 {
        let from = self.host_of[vi];
        debug_assert_ne!(from, to, "move_gain requires an actual relocation");

        let (from_total, from_count) = self.host_totals_after(from, vi, Removed);
        let (to_total, to_count) = self.host_totals_after(to, vi, Added);

        // Revenue deltas for every VM whose host total changed.
        let mut delta = 0.0;
        for &w in &self.vms_on[from] {
            if w == vi {
                continue;
            }
            let sla = self.vm_sla(w, from, &from_total);
            delta += self.vm_revenue(sla, from) - self.revenue[w];
        }
        for &w in &self.vms_on[to] {
            let sla = self.vm_sla(w, to, &to_total);
            delta += self.vm_revenue(sla, to) - self.revenue[w];
        }
        let moved_sla = self.vm_sla(vi, to, &to_total);
        delta += self.vm_revenue(moved_sla, to) - self.revenue[vi];

        // The moved VM's migration + network charges follow its host.
        let (mig, net) = self.vm_move_costs(vi, to);
        delta -= (mig - self.migration[vi]) + (net - self.network[vi]);

        // Source and destination energy.
        delta -= self.host_energy(from, &from_total, from_count) - self.energy[from];
        delta -= self.host_energy(to, &to_total, to_count) - self.energy[to];
        delta
    }

    /// Commits the relocation of `vi` to `to`, updating every cached
    /// term the move touches (the two hosts' demand is adjusted in
    /// place — no O(V·H) rebuild).
    pub fn apply_move(&mut self, vi: usize, to: usize) {
        let from = self.host_of[vi];
        debug_assert_ne!(from, to, "apply_move requires an actual relocation");

        // Re-home the VM.
        let pos = self.vms_on[from]
            .iter()
            .position(|&w| w == vi)
            .expect("resident list");
        self.vms_on[from].swap_remove(pos);
        self.vms_on[to].push(vi);
        self.host_of[vi] = to;
        let d = self.demands[vi];
        self.raw_demand[from] -= d;
        self.raw_demand[to] += d;
        self.counts[from] -= 1;
        self.counts[to] += 1;

        // Refresh both hosts' dependent terms.
        let from_total = self.host_total(from);
        let to_total = self.host_total(to);
        for hi in [from, to] {
            let total = if hi == from { from_total } else { to_total };
            for idx in 0..self.vms_on[hi].len() {
                let w = self.vms_on[hi][idx];
                let sla = self.vm_sla(w, hi, &total);
                let rev = self.vm_revenue(sla, hi);
                self.revenue_total += rev - self.revenue[w];
                self.sla[w] = sla;
                self.revenue[w] = rev;
            }
            let e = self.host_energy(hi, &total, self.counts[hi]);
            self.energy_total += e - self.energy[hi];
            self.energy[hi] = e;
        }

        let (mig, net) = self.vm_move_costs(vi, to);
        self.migration_total += mig - self.migration[vi];
        self.network_total += net - self.network[vi];
        self.migration[vi] = mig;
        self.network[vi] = net;
    }

    // ------------------------------------------------------------------
    // Term computation (each mirrors one clause of `evaluate_schedule`).
    // ------------------------------------------------------------------

    #[inline]
    fn vm_sla(&self, vi: usize, hi: usize, host_total: &Resources) -> f64 {
        self.oracle.sla(
            &self.problem.vms[vi],
            &self.problem.hosts[hi],
            host_total,
            self.transport[vi * self.n_loc_slots + self.loc_slot[hi]],
        )
    }

    #[inline]
    fn vm_revenue(&self, sla: f64, hi: usize) -> f64 {
        self.problem.billing.revenue(sla, self.available[hi])
    }

    /// Migration penalty and network charges of hosting `vi` on `hi` —
    /// independent of co-location, so a pure (vm, host) function.
    fn vm_move_costs(&self, vi: usize, hi: usize) -> (f64, f64) {
        let problem = self.problem;
        let vm = &problem.vms[vi];
        let host = &problem.hosts[hi];
        let mut network =
            crate::profit::client_traffic_eur(vm, host.location, &problem.net, problem.horizon);
        let mut migration = 0.0;
        if let (Some(cur), Some(cur_loc)) = (vm.current_pm, vm.current_location) {
            if cur != host.id {
                let blackout =
                    problem
                        .net
                        .migration_duration(vm.image_size_mb, cur_loc, host.location);
                let lost = problem.billing.revenue(1.0, blackout.min(problem.horizon));
                let queue_debt = if vm.load.rps > 0.0 {
                    (vm.load.backlog / (vm.load.rps * blackout.as_secs_f64().max(1.0))).min(3.0)
                } else {
                    0.0
                };
                migration = lost * (1.0 + queue_debt) + problem.billing.migration_fee_eur;
                network += crate::profit::image_transfer_eur(
                    vm.image_size_mb,
                    cur_loc,
                    host.location,
                    &problem.net,
                );
            }
        }
        (migration, network)
    }

    /// Energy cost of `hi` at the given believed total and resident
    /// count (0 € when the host ends the round empty and unpowered).
    fn host_energy(&self, hi: usize, host_total: &Resources, count: usize) -> f64 {
        let host = &self.problem.hosts[hi];
        if host.fixed_vm_count == 0 && count == 0 {
            return 0.0;
        }
        host.power.facility_watts(host_total.cpu) * self.problem.horizon.as_hours_f64() / 1000.0
            * host.energy_eur_kwh
    }

    /// Host `hi`'s believed total and count after removing/adding `vi`.
    fn host_totals_after(&self, hi: usize, vi: usize, dir: MoveDir) -> (Resources, usize) {
        let host = &self.problem.hosts[hi];
        let mut raw = self.raw_demand[hi];
        let count = match dir {
            Removed => {
                raw -= self.demands[vi];
                self.counts[hi] - 1
            }
            Added => {
                raw += self.demands[vi];
                self.counts[hi] + 1
            }
        };
        raw.cpu += host.virt_overhead_cpu_per_vm * count as f64;
        (raw, count)
    }
}

/// Direction of a tentative single-VM adjustment on one host.
#[derive(Clone, Copy, PartialEq, Eq)]
enum MoveDir {
    Removed,
    Added,
}
use MoveDir::{Added, Removed};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::TrueOracle;
    use crate::problem::synthetic::problem;
    use crate::profit::evaluate_schedule;
    use pamdc_infra::ids::PmId;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn matches_full_evaluation_at_construction() {
        for (vms, hosts, rps) in [(1usize, 1usize, 30.0), (4, 4, 120.0), (6, 8, 400.0)] {
            let p = problem(vms, hosts, rps);
            let o = TrueOracle::new();
            let s = crate::bestfit::best_fit(&p, &o).schedule;
            let full = evaluate_schedule(&p, &o, &s);
            let inc = ScheduleEvaluator::new(&p, &o, &s);
            assert!(
                close(inc.profit_eur(), full.profit_eur),
                "{} vs {}",
                inc.profit_eur(),
                full.profit_eur
            );
            let (rev, energy, mig, net) = inc.components();
            assert!(close(rev, full.revenue_eur));
            assert!(close(energy, full.energy_eur));
            assert!(close(mig, full.migration_eur));
            assert!(close(net, full.network_eur));
        }
    }

    #[test]
    fn move_gain_matches_full_reevaluation() {
        let p = problem(4, 6, 150.0);
        let o = TrueOracle::new();
        let s = Schedule {
            assignment: vec![PmId(0), PmId(0), PmId(1), PmId(2)],
        };
        let inc = ScheduleEvaluator::new(&p, &o, &s);
        let base = evaluate_schedule(&p, &o, &s).profit_eur;
        for vi in 0..4 {
            for hi in 0..6 {
                if inc.host_of(vi) == hi {
                    continue;
                }
                let mut moved = s.clone();
                moved.assignment[vi] = p.hosts[hi].id;
                let full_gain = evaluate_schedule(&p, &o, &moved).profit_eur - base;
                let inc_gain = inc.move_gain(vi, hi);
                assert!(
                    close(inc_gain, full_gain),
                    "vm {vi} -> host {hi}: incremental {inc_gain} vs full {full_gain}"
                );
            }
        }
    }

    #[test]
    fn apply_move_keeps_cache_consistent() {
        let p = problem(5, 8, 200.0);
        let o = TrueOracle::new();
        let s = crate::baselines::round_robin(&p);
        let mut inc = ScheduleEvaluator::new(&p, &o, &s);
        // Walk a few arbitrary (valid) moves and re-check against the
        // full evaluation each time.
        let moves = [(0usize, 5usize), (2, 5), (0, 3), (4, 0)];
        for &(vi, hi) in &moves {
            if inc.host_of(vi) == hi {
                continue;
            }
            let predicted = inc.profit_eur() + inc.move_gain(vi, hi);
            inc.apply_move(vi, hi);
            assert!(close(inc.profit_eur(), predicted));
            let full = evaluate_schedule(&p, &o, &inc.schedule()).profit_eur;
            assert!(
                close(inc.profit_eur(), full),
                "after move {vi}->{hi}: cached {} vs full {full}",
                inc.profit_eur()
            );
        }
    }

    #[test]
    fn schedule_roundtrips() {
        let p = problem(3, 4, 100.0);
        let o = TrueOracle::new();
        let s = crate::baselines::round_robin(&p);
        let inc = ScheduleEvaluator::new(&p, &o, &s);
        assert_eq!(inc.schedule(), s);
    }
}
