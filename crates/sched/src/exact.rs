//! Exact branch-and-bound solver.
//!
//! The paper reports that exhaustive MILP solving (GUROBI) "required
//! several minutes to schedule 10 jobs among 40 candidate hosts", which
//! is what pushed it to the Best-Fit heuristic. This module reproduces
//! that comparison point: an optimal solver whose cost explodes with
//! problem size, benchmarked against the heuristic in
//! `benches/solver_scaling.rs`.
//!
//! The search assigns VMs one at a time (most-demanding first, mirroring
//! the heuristic's order) and prunes with an admissible bound: the best
//! already-banked profit plus, for every unassigned VM, the maximum
//! revenue it could possibly earn (SLA = 1, no migration, no marginal
//! energy).

use crate::oracle::QosOracle;
use crate::problem::{Problem, Schedule};
use crate::profit::{evaluate_schedule, marginal_profit, PlacementState, ScheduleEval};
use pamdc_infra::resources::Resources;

/// Result of an exact search.
#[derive(Clone, Debug)]
pub struct ExactResult {
    /// The optimal schedule found.
    pub schedule: Schedule,
    /// Its full evaluation.
    pub eval: ScheduleEval,
    /// Search nodes expanded (the scaling metric).
    pub nodes_expanded: u64,
}

/// Outcome of a budgeted exact search.
///
/// The solver's cost is exponential in the VM count, so callers that run
/// it on sized-up instances (the scaling experiment, ad-hoc
/// benchmarking) must bound it. Exhausting the budget is reported
/// loudly rather than silently returning the incumbent as "optimal".
#[derive(Clone, Debug)]
pub enum ExactOutcome {
    /// The search ran to completion; the result is provably optimal.
    Optimal(ExactResult),
    /// The node budget ran out before the search space was exhausted.
    BudgetExhausted {
        /// Nodes expanded before giving up (≈ the budget).
        nodes_expanded: u64,
        /// Best complete schedule found so far, if any reached depth n.
        /// It is a feasible answer but carries no optimality claim.
        incumbent: Option<ExactResult>,
    },
}

impl ExactOutcome {
    /// The result, insisting the search completed.
    ///
    /// Panics on [`ExactOutcome::BudgetExhausted`] — use this only where
    /// an exhausted budget means the experiment configuration is wrong.
    pub fn expect_optimal(self) -> ExactResult {
        match self {
            ExactOutcome::Optimal(r) => r,
            ExactOutcome::BudgetExhausted { nodes_expanded, .. } => panic!(
                "exact search exhausted its node budget after {nodes_expanded} nodes; \
                 raise the budget or shrink the instance"
            ),
        }
    }
}

/// Exhaustive branch-and-bound over all `hosts^vms` assignments.
///
/// Feasibility (believed demand within capacity) is enforced during the
/// search; when the whole instance is infeasible the solver falls back to
/// allowing overflow placements so constraint 1 still holds.
pub fn branch_and_bound(problem: &Problem, oracle: &dyn QosOracle) -> ExactResult {
    branch_and_bound_with_budget(problem, oracle, u64::MAX).expect_optimal()
}

/// [`branch_and_bound`] with a hard cap on expanded search nodes.
///
/// The budget spans the entire call, including the overflow re-run on
/// infeasible instances. When it runs out the search stops immediately
/// and the best complete schedule seen so far (if any) is returned as a
/// non-optimal incumbent.
pub fn branch_and_bound_with_budget(
    problem: &Problem,
    oracle: &dyn QosOracle,
    node_budget: u64,
) -> ExactOutcome {
    let _span = pamdc_obs::span!("bnb");
    assert!(!problem.hosts.is_empty(), "need at least one host");
    let n = problem.vms.len();
    let demands: Vec<Resources> = problem.vms.iter().map(|vm| oracle.demand(vm)).collect();

    // Most-demanding-first ordering tightens the bound early.
    let reference = problem
        .hosts
        .iter()
        .map(|h| h.capacity)
        .fold(Resources::ZERO, |acc, c| acc.max(&c));
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let da = demands[a].normalized_magnitude(&reference);
        let db = demands[b].normalized_magnitude(&reference);
        db.partial_cmp(&da).expect("finite").then(a.cmp(&b))
    });

    // Optimistic per-VM profit cap: full revenue, zero costs.
    let max_rev = problem.billing.revenue(1.0, problem.horizon);

    struct Search<'a> {
        problem: &'a Problem,
        oracle: &'a dyn QosOracle,
        demands: &'a [Resources],
        order: &'a [usize],
        max_rev: f64,
        best_profit: f64,
        best_assignment: Vec<usize>,
        nodes: u64,
        node_budget: u64,
        exhausted: bool,
        allow_overflow: bool,
    }

    impl Search<'_> {
        fn dfs(
            &mut self,
            depth: usize,
            state: &mut PlacementState,
            current: &mut Vec<usize>,
            banked: f64,
        ) {
            if self.exhausted {
                return;
            }
            if self.nodes >= self.node_budget {
                self.exhausted = true;
                return;
            }
            self.nodes += 1;
            if depth == self.order.len() {
                // Score the complete assignment with the *final*
                // co-location (placement-time SLAs in `banked` are an
                // optimistic bound: adding VMs later only degrades
                // earlier estimates, energy telescopes exactly and
                // migration terms are placement-independent).
                let mut assignment = vec![self.problem.hosts[0].id; self.order.len()];
                for (d, &host_idx) in current.iter().enumerate() {
                    assignment[self.order[d]] = self.problem.hosts[host_idx].id;
                }
                let eval = evaluate_schedule(self.problem, self.oracle, &Schedule { assignment });
                if eval.profit_eur > self.best_profit {
                    self.best_profit = eval.profit_eur;
                    self.best_assignment = current.clone();
                }
                return;
            }
            // Admissible bound: banked + optimistic remainder.
            let remaining = (self.order.len() - depth) as f64;
            if banked + remaining * self.max_rev <= self.best_profit {
                return;
            }
            let vm_idx = self.order[depth];
            for host_idx in 0..self.problem.hosts.len() {
                let fits = state.fits(self.problem, host_idx, &self.demands[vm_idx]);
                if !fits && !self.allow_overflow {
                    continue;
                }
                let score = marginal_profit(self.problem, self.oracle, state, vm_idx, host_idx);
                let mut next = state.clone();
                next.assign(self.problem, host_idx, self.demands[vm_idx]);
                current.push(host_idx);
                self.dfs(depth + 1, &mut next, current, banked + score.profit());
                current.pop();
            }
        }
    }

    let mut search = Search {
        problem,
        oracle,
        demands: &demands,
        order: &order,
        max_rev,
        best_profit: f64::NEG_INFINITY,
        best_assignment: Vec::new(),
        nodes: 0,
        node_budget,
        exhausted: false,
        allow_overflow: false,
    };
    let mut state = PlacementState::new(problem);
    let mut current = Vec::with_capacity(n);
    search.dfs(0, &mut state, &mut current, 0.0);

    if search.best_assignment.is_empty() && n > 0 && !search.exhausted {
        // Infeasible under capacity: re-run allowing overflow. The node
        // budget is shared across both passes.
        search.allow_overflow = true;
        search.best_profit = f64::NEG_INFINITY;
        let mut state = PlacementState::new(problem);
        let mut current = Vec::with_capacity(n);
        search.dfs(0, &mut state, &mut current, 0.0);
    }

    if search.best_assignment.is_empty() && n > 0 {
        // Budget died before any complete schedule was reached.
        pamdc_obs::metrics::add(pamdc_obs::Counter::ExactBudgetExhausted, 1);
        return ExactOutcome::BudgetExhausted {
            nodes_expanded: search.nodes,
            incumbent: None,
        };
    }

    // Translate the depth-ordered assignment back to problem-VM indexing.
    let mut assignment = vec![problem.hosts[0].id; n];
    for (depth, &host_idx) in search.best_assignment.iter().enumerate() {
        assignment[order[depth]] = problem.hosts[host_idx].id;
    }
    let schedule = Schedule { assignment };
    schedule.validate(problem);
    let eval = evaluate_schedule(problem, oracle, &schedule);
    let result = ExactResult {
        schedule,
        eval,
        nodes_expanded: search.nodes,
    };
    if search.exhausted {
        pamdc_obs::metrics::add(pamdc_obs::Counter::ExactBudgetExhausted, 1);
        ExactOutcome::BudgetExhausted {
            nodes_expanded: search.nodes,
            incumbent: Some(result),
        }
    } else {
        ExactOutcome::Optimal(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bestfit::best_fit;
    use crate::oracle::TrueOracle;
    use crate::problem::synthetic::problem;

    #[test]
    fn optimal_at_least_as_good_as_heuristic() {
        for (vms, hosts, rps) in [(3, 3, 120.0), (4, 3, 300.0), (2, 4, 500.0)] {
            let p = problem(vms, hosts, rps);
            let o = TrueOracle::new();
            let exact = branch_and_bound(&p, &o);
            let heur = best_fit(&p, &o);
            let heur_eval = evaluate_schedule(&p, &o, &heur.schedule);
            assert!(
                exact.eval.profit_eur >= heur_eval.profit_eur - 1e-9,
                "exact {} < heuristic {} on ({vms},{hosts},{rps})",
                exact.eval.profit_eur,
                heur_eval.profit_eur
            );
        }
    }

    #[test]
    fn tiny_instance_enumerates_correctly() {
        // 2 VMs × 2 hosts = 4 assignments; brute-force check.
        let p = problem(2, 2, 200.0);
        let o = TrueOracle::new();
        let exact = branch_and_bound(&p, &o);
        let mut best = f64::NEG_INFINITY;
        for a in 0..2 {
            for b in 0..2 {
                let s = Schedule {
                    assignment: vec![p.hosts[a].id, p.hosts[b].id],
                };
                best = best.max(evaluate_schedule(&p, &o, &s).profit_eur);
            }
        }
        assert!((exact.eval.profit_eur - best).abs() < 1e-9);
    }

    #[test]
    fn infeasible_instance_still_places_all() {
        let p = problem(6, 1, 700.0);
        let o = TrueOracle::new();
        let exact = branch_and_bound(&p, &o);
        assert_eq!(exact.schedule.assignment.len(), 6);
    }

    #[test]
    fn budget_exhaustion_is_loud_and_carries_the_incumbent() {
        let p = problem(6, 4, 150.0);
        let o = TrueOracle::new();
        let full = branch_and_bound(&p, &o);
        assert!(full.nodes_expanded > 50, "want a non-trivial search");
        // A budget far below the full search must report exhaustion.
        match branch_and_bound_with_budget(&p, &o, full.nodes_expanded / 2) {
            ExactOutcome::BudgetExhausted {
                nodes_expanded,
                incumbent,
            } => {
                assert!(nodes_expanded <= full.nodes_expanded / 2 + 1);
                if let Some(inc) = incumbent {
                    // Any incumbent is a valid (if sub-optimal) schedule.
                    assert!(inc.eval.profit_eur <= full.eval.profit_eur + 1e-9);
                }
            }
            ExactOutcome::Optimal(_) => panic!("half the nodes cannot prove optimality"),
        }
        // A generous budget reproduces the unbudgeted answer exactly.
        match branch_and_bound_with_budget(&p, &o, full.nodes_expanded * 2) {
            ExactOutcome::Optimal(r) => assert_eq!(r.schedule, full.schedule),
            ExactOutcome::BudgetExhausted { .. } => panic!("budget was sufficient"),
        }
    }

    #[test]
    fn tiny_budget_on_infeasible_instance_reports_no_incumbent() {
        // Infeasible instance + budget too small to even finish the
        // feasibility pass: no incumbent exists, and that is reported
        // rather than panicking or fabricating a schedule.
        let p = problem(6, 1, 700.0);
        let o = TrueOracle::new();
        match branch_and_bound_with_budget(&p, &o, 3) {
            ExactOutcome::BudgetExhausted { incumbent, .. } => assert!(incumbent.is_none()),
            ExactOutcome::Optimal(_) => panic!("3 nodes cannot solve 6 VMs"),
        }
    }

    #[test]
    fn node_count_grows_with_instance_size() {
        let o = TrueOracle::new();
        let small = branch_and_bound(&problem(3, 3, 150.0), &o);
        let large = branch_and_bound(&problem(6, 4, 150.0), &o);
        assert!(
            large.nodes_expanded > small.nodes_expanded,
            "{} vs {}",
            large.nodes_expanded,
            small.nodes_expanded
        );
    }
}
