//! The two-layer hierarchical scheduler — the paper's main contribution
//! (§III-B, §IV-C).
//!
//! Multi-DC systems decentralize: "each DC deals with its VMs and
//! resources, bringing to the global scheduler information about the
//! offered or tentative host where each VM may be placed". Concretely,
//! each round:
//!
//! 1. **Intra-DC pass** — every datacenter runs Descending Best-Fit over
//!    its own VMs and hosts (consolidating or deconsolidating locally).
//! 2. **Narrow interface** — each DC publishes (a) the VMs whose
//!    estimated QoS stays poor even after the local pass (they "could
//!    improve if moved across DCs") and (b) its hosts with headroom,
//!    identical empty machines deduplicated.
//! 3. **Global pass** — one Best-Fit over the published candidates and
//!    offers, whose profit function sees inter-DC latency, energy-price
//!    differences and migration blackouts.
//!
//! The global pass overrides the intra-DC choice only for the VMs it was
//! given — everything else never leaves its DC, which is what keeps the
//! round cheap ("this approach largely reduces solving cost").
//!
//! The intra-DC passes are independent by construction (each sees only
//! its own DC's VMs and hosts), so step 1 fans the per-DC shards out
//! through [`pamdc_simcore::par::parallel_map`]. Results are merged in
//! DC order and each shard's Best-Fit is deterministic, so a round is
//! bit-identical at any worker count — cross-DC delocation still happens
//! only in the global pass over the shard summaries, exactly as before.

use crate::bestfit::{best_fit_with_demands_tuned, SchedTuning};
use crate::filter::{
    hosts_worth_offering_with, reduced_problem_placed, reduced_problem_with_demands,
    vms_needing_attention_placed, FilterConfig,
};
use crate::localsearch::{improve_schedule, LocalSearchConfig};
use crate::oracle::QosOracle;
use crate::problem::{Problem, Schedule};
use crate::profit::BelievedTotals;
use pamdc_infra::ids::{DcId, LocationId, PmId};
use pamdc_infra::resources::Resources;
use std::collections::BTreeMap;

/// Hierarchical scheduler configuration.
#[derive(Clone, Debug)]
pub struct HierarchicalConfig {
    /// Candidate/offer filtering thresholds.
    pub filter: FilterConfig,
    /// Whole-schedule consolidation pass (None disables it). This is the
    /// global manager's final word: single-VM relocations accepted only
    /// when the full objective — including idle hosts emptied and
    /// migration blackouts — strictly improves.
    pub local_search: Option<LocalSearchConfig>,
    /// Solver tuning threaded into every Best-Fit pass of the round
    /// (intra-DC shards, global pass, fallback). The consolidation pass
    /// carries its own copy inside `local_search`.
    pub tuning: SchedTuning,
}

impl Default for HierarchicalConfig {
    fn default() -> Self {
        HierarchicalConfig {
            filter: FilterConfig::default(),
            local_search: Some(LocalSearchConfig::default()),
            tuning: SchedTuning::default(),
        }
    }
}

/// Statistics of one hierarchical round (for the paper's scalability
/// discussion).
#[derive(Clone, Debug, Default)]
pub struct RoundStats {
    /// VMs handled purely intra-DC.
    pub intra_vms: usize,
    /// VMs escalated to the global pass.
    pub global_vms: usize,
    /// Hosts offered to the global pass.
    pub offered_hosts: usize,
    /// Moves applied by the consolidation pass.
    pub consolidation_moves: usize,
    /// Per-DC shards the intra-DC pass fanned out over.
    pub shards: usize,
}

/// Runs one full hierarchical round.
pub fn hierarchical_round(
    problem: &Problem,
    oracle: &dyn QosOracle,
    cfg: &HierarchicalConfig,
) -> (Schedule, RoundStats) {
    let _span = pamdc_obs::span!("hier");
    // Believed demand per VM: queried once here, shared by the intra-DC
    // passes, both filters, the global pass and the fallback. (A VM's
    // believed demand does not depend on its placement, so the vector
    // stays valid all round.)
    let demands: Vec<Resources> = problem.vms.iter().map(|vm| oracle.demand(vm)).collect();

    // ------------------------------------------------------------------
    // 1. Intra-DC pass: group VMs by the DC of their current host.
    // ------------------------------------------------------------------
    let mut assignment: Vec<Option<_>> = vec![None; problem.vms.len()];
    let mut by_dc: BTreeMap<DcId, Vec<usize>> = BTreeMap::new();
    let mut homeless: Vec<usize> = Vec::new();
    for (vi, vm) in problem.vms.iter().enumerate() {
        match vm.current_pm.and_then(|pm| problem.host_index(pm)) {
            Some(hi) => by_dc.entry(problem.hosts[hi].dc).or_default().push(vi),
            None => homeless.push(vi),
        }
    }

    // Each DC's pass reads only shared immutable state, so the shards
    // run in parallel; merging in input (= DC) order keeps the round
    // bit-identical to the old sequential loop at any worker count.
    let shards: Vec<(DcId, Vec<usize>)> = by_dc.into_iter().collect();
    let shard_count = shards.len();
    let tuning = cfg.tuning;
    let shard_results = {
        let _intra = pamdc_obs::span!("intra");
        pamdc_simcore::par::parallel_map(shards, |(dc, vm_indices)| {
            // Worker threads inherit the round's span path, so this
            // nests as `.../hier/intra/dc<N>` in a traced run.
            let _shard = pamdc_obs::span::enter_dyn(|| format!("dc{}", dc.0));
            let host_indices: Vec<usize> = (0..problem.hosts.len())
                .filter(|&hi| problem.hosts[hi].dc == dc)
                .collect();
            let (sub, mapping) =
                reduced_problem_with_demands(problem, &demands, &vm_indices, &host_indices);
            let sub_demands: Vec<Resources> = mapping.iter().map(|&vi| demands[vi]).collect();
            let result = best_fit_with_demands_tuned(&sub, oracle, &sub_demands, &tuning);
            (mapping, result.schedule.assignment)
        })
    };
    for (mapping, shard_assignment) in shard_results {
        for (sub_vi, &orig_vi) in mapping.iter().enumerate() {
            assignment[orig_vi] = Some(shard_assignment[sub_vi]);
        }
    }

    // Effective post-local placement: the current placement overridden
    // by the intra-DC outcome (so the global filter judges the
    // *post-local* situation, as the paper specifies). Held as per-VM
    // vectors — a placement-only snapshot — instead of cloning and
    // rewriting the whole `Problem` (hosts, VMs, profiles), which at
    // fleet scale cost more than the passes it fed.
    let mut eff_pm: Vec<Option<PmId>> = problem.vms.iter().map(|vm| vm.current_pm).collect();
    let mut eff_loc: Vec<Option<LocationId>> =
        problem.vms.iter().map(|vm| vm.current_location).collect();
    for (vi, slot) in assignment.iter().enumerate() {
        if let Some(pm) = slot {
            eff_pm[vi] = Some(*pm);
            if let Some(hi) = problem.host_index(*pm) {
                eff_loc[vi] = Some(problem.hosts[hi].location);
            }
        }
    }
    let eff_host: Vec<Option<usize>> = eff_pm
        .iter()
        .map(|pm| pm.and_then(|pm| problem.host_index(pm)))
        .collect();

    // ------------------------------------------------------------------
    // 2. Narrow interface: candidates + offers. Both filters judge the
    //    post-local placement over one shared believed-totals snapshot.
    // ------------------------------------------------------------------
    let interface_span = pamdc_obs::span!("interface");
    let believed = BelievedTotals::from_placement(problem, demands.clone(), &eff_host);
    let mut candidates =
        vms_needing_attention_placed(problem, oracle, &cfg.filter, &believed, &eff_host);
    for vi in homeless {
        if !candidates.contains(&vi) {
            candidates.push(vi);
        }
    }
    candidates.sort_unstable();
    let offers = hosts_worth_offering_with(problem, &cfg.filter, &believed);
    drop(interface_span);

    let stats = RoundStats {
        intra_vms: problem.vms.len() - candidates.len(),
        global_vms: candidates.len(),
        offered_hosts: offers.len(),
        consolidation_moves: 0,
        shards: shard_count,
    };

    // ------------------------------------------------------------------
    // 3. Global pass (skipped when nobody needs it).
    // ------------------------------------------------------------------
    if !candidates.is_empty() && !offers.is_empty() {
        let _global = pamdc_obs::span!("global");
        let (sub, mapping) =
            reduced_problem_placed(problem, &demands, &candidates, &offers, &eff_pm, &eff_loc);
        let sub_demands: Vec<Resources> = mapping.iter().map(|&vi| demands[vi]).collect();
        let result = best_fit_with_demands_tuned(&sub, oracle, &sub_demands, &tuning);
        for (sub_vi, &orig_vi) in mapping.iter().enumerate() {
            assignment[orig_vi] = Some(result.schedule.assignment[sub_vi]);
        }
    }

    // Any VM still unassigned (e.g. homeless with no offers) falls back
    // to a plain global Best-Fit over everything.
    if assignment.iter().any(Option::is_none) {
        let _fallback = pamdc_obs::span!("fallback");
        let fallback = best_fit_with_demands_tuned(problem, oracle, &demands, &tuning);
        for (vi, slot) in assignment.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(fallback.schedule.assignment[vi]);
            }
        }
    }

    let mut schedule = Schedule {
        assignment: assignment
            .into_iter()
            .map(|s| s.expect("all placed"))
            .collect(),
    };
    schedule.validate(problem);

    // ------------------------------------------------------------------
    // 4. Consolidation pass: the global manager's energy sweep.
    // ------------------------------------------------------------------
    let mut stats = stats;
    if let Some(ls) = &cfg.local_search {
        let _consolidate = pamdc_obs::span!("consolidate");
        let (improved, moves) = improve_schedule(problem, oracle, schedule, ls);
        schedule = improved;
        stats.consolidation_moves = moves;
    }

    // Round-boundary counter flush: one add per field, mirroring
    // `RoundStats` into the metrics registry.
    use pamdc_obs::{metrics, Counter};
    metrics::add(Counter::HierRounds, 1);
    metrics::add(Counter::HierShards, stats.shards as u64);
    metrics::add(Counter::HierOfferedHosts, stats.offered_hosts as u64);
    metrics::add(Counter::HierGlobalVms, stats.global_vms as u64);
    metrics::add(
        Counter::HierConsolidationMoves,
        stats.consolidation_moves as u64,
    );
    (schedule, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::TrueOracle;
    use crate::problem::synthetic::problem;
    use crate::profit::evaluate_schedule;
    use pamdc_infra::ids::PmId;

    /// 8 hosts = 2 per DC (fixture assigns round-robin i%4), 4 VMs all
    /// currently crushed onto host 0.
    fn crushed() -> Problem {
        let mut p = problem(4, 8, 420.0);
        for vm in &mut p.vms {
            vm.current_pm = Some(PmId(0));
        }
        p
    }

    #[test]
    fn light_load_never_escalates() {
        let mut p = problem(3, 8, 20.0);
        let home = p.hosts[0].location;
        for vm in &mut p.vms {
            for f in &mut vm.flows {
                f.source = home;
            }
        }
        let (schedule, stats) = hierarchical_round(&p, &TrueOracle::new(), &Default::default());
        assert_eq!(stats.global_vms, 0, "healthy VMs must stay intra-DC");
        assert_eq!(schedule.migration_count(&p), 0);
    }

    #[test]
    fn overload_escalates_and_improves() {
        let p = crushed();
        let o = TrueOracle::new();
        let (schedule, stats) = hierarchical_round(&p, &o, &Default::default());
        let stay = crate::baselines::static_schedule(&p, &o);
        let e_dyn = evaluate_schedule(&p, &o, &schedule);
        let e_stat = evaluate_schedule(&p, &o, &stay);
        assert!(stats.global_vms > 0, "crushed VMs must escalate");
        assert!(
            e_dyn.mean_sla() > e_stat.mean_sla(),
            "hierarchical {} must beat static {}",
            e_dyn.mean_sla(),
            e_stat.mean_sla()
        );
    }

    #[test]
    fn local_headroom_is_used_before_going_global() {
        // 2 heavy VMs on host 0; host 4 is the empty twin in the SAME dc.
        // The intra-DC pass alone can fix this — the global round should
        // see no candidates.
        let mut p = problem(2, 8, 380.0);
        let home = p.hosts[0].location;
        for vm in &mut p.vms {
            vm.current_pm = Some(PmId(0));
            for f in &mut vm.flows {
                f.source = home;
            }
        }
        let (schedule, stats) = hierarchical_round(&p, &TrueOracle::new(), &Default::default());
        assert_eq!(stats.global_vms, 0, "local deconsolidation suffices");
        let used: std::collections::BTreeSet<_> = schedule.assignment.iter().collect();
        // Both hosts used are in DC 0 (indices 0 and 4 -> i%4 == 0).
        for pm in used {
            assert_eq!(p.hosts[p.host_index(*pm).unwrap()].dc, p.hosts[0].dc);
        }
    }

    #[test]
    fn homeless_vms_get_placed() {
        let mut p = problem(3, 8, 100.0);
        for vm in &mut p.vms {
            vm.current_pm = None;
            vm.current_location = None;
        }
        let (schedule, stats) = hierarchical_round(&p, &TrueOracle::new(), &Default::default());
        assert_eq!(schedule.assignment.len(), 3);
        assert_eq!(stats.global_vms, 3);
    }

    #[test]
    fn intra_pass_shards_per_dc_and_merges_deterministically() {
        // Residents spread over all 8 hosts → all 4 DCs have a shard.
        let mut p = problem(8, 8, 150.0);
        for (i, vm) in p.vms.iter_mut().enumerate() {
            vm.current_pm = Some(PmId(i as u32));
            vm.current_location = Some(p.hosts[i].location);
        }
        let o = TrueOracle::new();
        let (a, stats) = hierarchical_round(&p, &o, &Default::default());
        assert_eq!(stats.shards, 4, "one shard per DC with residents");
        let (b, _) = hierarchical_round(&p, &o, &Default::default());
        assert_eq!(a, b, "parallel shard merge must stay deterministic");
    }

    #[test]
    fn round_is_deterministic() {
        let p = crushed();
        let o = TrueOracle::new();
        let (a, _) = hierarchical_round(&p, &o, &Default::default());
        let (b, _) = hierarchical_round(&p, &o, &Default::default());
        assert_eq!(a, b);
    }
}
