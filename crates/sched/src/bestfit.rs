//! Descending Best-Fit — the paper's Algorithm 1.
//!
//! VMs are ordered by decreasing believed demand, then each is placed on
//! the host with the highest marginal profit. The profit function carries
//! all the trade-offs (SLA revenue, migration penalty, energy, latency),
//! so the same algorithm expresses plain BF, BF-OB and BF-ML purely by
//! swapping the [`QosOracle`].
//!
//! Following the paper's optimisations, hosts where the VM cannot fit
//! (under the oracle's believed demand) are preferred against; only when
//! no host fits is the least-bad overflow placement chosen — constraint 1
//! (every VM placed) outranks constraint 2 when the system is simply out
//! of capacity, which is exactly what happens during the Figure 6 flash
//! crowd. Overflow placements still honor memory as a hard dimension
//! where possible: a host whose RAM holds the VM outranks any
//! RAM-overcommitted one, because CPU/network contention degrades
//! gracefully while memory exhaustion does not.
//!
//! ## Two implementations, one answer
//!
//! [`best_fit_full_scan`] is the literal Algorithm 1 inner loop: score
//! every (VM, host) pair. [`best_fit_indexed`] consults the bucketed
//! free-capacity [`CandidateIndex`](crate::index::CandidateIndex)
//! instead, scoring one representative per host-equivalence group — the
//! shortlist contains *all* hosts that fit (plus the overflow tiers when
//! nothing does), so the two produce **bit-identical** schedules (see
//! `tests/shortlist_equivalence.rs`). [`best_fit_with_demands`]
//! dispatches on fleet size: paper-scale problems (every golden report)
//! take the full scan verbatim; fleets of [`INDEX_MIN_HOSTS`] hosts or
//! more take the index.

use crate::index::IndexMode;
use crate::oracle::QosOracle;
use crate::problem::{Problem, Schedule};
use crate::profit::{marginal_profit, marginal_profit_hoisted, PlacementScore, PlacementState};
use pamdc_infra::gateway::weighted_transport_secs;
use pamdc_infra::resources::Resources;

/// Fleets at least this large take the indexed shortlist path; smaller
/// ones keep the exact full scan (same answers either way — the
/// threshold trades index upkeep against scan width).
pub const INDEX_MIN_HOSTS: usize = 64;

/// Shared solver tuning, threaded from the `[policy]` spec table down
/// into Best-Fit and the consolidation pass. The defaults reproduce the
/// untuned entry points bit-for-bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchedTuning {
    /// Fleet size at which the solvers switch from the exact full scan
    /// to the candidate index (both sides of the switch produce the
    /// same schedule).
    pub index_min_hosts: usize,
    /// `Some(k)`: opt into the approximate near-equivalence index —
    /// demand bits leave the group key, so heterogeneous fleets bucket
    /// into few groups, and up to `k` members per group are scored.
    /// **Relaxes the bit-identity guarantee**; policies carrying it are
    /// loudly labeled in reports. `None` (default) keeps exact mode.
    pub near_top_k: Option<usize>,
}

impl Default for SchedTuning {
    fn default() -> Self {
        SchedTuning {
            index_min_hosts: INDEX_MIN_HOSTS,
            near_top_k: None,
        }
    }
}

impl SchedTuning {
    /// The index mode these knobs select.
    pub fn index_mode(&self) -> IndexMode {
        match self.near_top_k {
            None => IndexMode::Exact,
            Some(k) => IndexMode::Near { top_k: k.max(1) },
        }
    }
}

/// Outcome of one Best-Fit run.
#[derive(Clone, Debug)]
pub struct BestFitResult {
    /// The chosen schedule.
    pub schedule: Schedule,
    /// Per-VM scores at decision time (problem-VM indexing).
    pub scores: Vec<PlacementScore>,
    /// VMs that did not fit anywhere under believed demand and were
    /// overflow-placed.
    pub overflow_count: usize,
    /// `marginal_profit` evaluations performed — the work metric the
    /// candidate index exists to shrink (full scan: VMs × hosts).
    pub scored_candidates: usize,
}

/// Runs descending Best-Fit over the problem under the oracle's beliefs.
pub fn best_fit(problem: &Problem, oracle: &dyn QosOracle) -> BestFitResult {
    let demands: Vec<Resources> = problem.vms.iter().map(|vm| oracle.demand(vm)).collect();
    best_fit_with_demands(problem, oracle, &demands)
}

/// [`best_fit`] over shared precomputed believed demands — callers that
/// already queried the oracle once per VM this round (the hierarchical
/// scheduler, the consolidation pass) pass them through instead of
/// paying the oracle again. Dispatches between the exact full scan and
/// the indexed shortlist on [`INDEX_MIN_HOSTS`].
pub fn best_fit_with_demands(
    problem: &Problem,
    oracle: &dyn QosOracle,
    demands: &[Resources],
) -> BestFitResult {
    best_fit_with_demands_tuned(problem, oracle, demands, &SchedTuning::default())
}

/// [`best_fit_with_demands`] under explicit [`SchedTuning`]: the
/// dispatch threshold and the (opt-in, approximate) near-equivalence
/// index come from the knobs instead of the compiled defaults. The
/// default tuning is bit-identical to [`best_fit_with_demands`].
pub fn best_fit_with_demands_tuned(
    problem: &Problem,
    oracle: &dyn QosOracle,
    demands: &[Resources],
    tuning: &SchedTuning,
) -> BestFitResult {
    pamdc_obs::metrics::add(pamdc_obs::Counter::BestfitCalls, 1);
    if problem.hosts.len() >= tuning.index_min_hosts {
        pamdc_obs::metrics::add(pamdc_obs::Counter::BestfitDispatchIndex, 1);
        best_fit_indexed_mode(problem, oracle, demands, tuning.index_mode())
    } else {
        pamdc_obs::metrics::add(pamdc_obs::Counter::BestfitDispatchScan, 1);
        best_fit_full_scan(problem, oracle, demands)
    }
}

/// Shared prologue: input checks and Algorithm 1's
/// `order_by_demand(..., desc)` — VMs by decreasing believed demand,
/// normalized against the largest host so the components are
/// commensurable.
fn descending_order(problem: &Problem, demands: &[Resources]) -> Vec<usize> {
    assert!(
        !problem.hosts.is_empty(),
        "best-fit needs at least one candidate host"
    );
    assert_eq!(
        demands.len(),
        problem.vms.len(),
        "one believed demand per VM"
    );
    let reference = problem
        .hosts
        .iter()
        .map(|h| h.capacity)
        .fold(Resources::ZERO, |acc, c| acc.max(&c));
    let mut order: Vec<usize> = (0..problem.vms.len()).collect();
    order.sort_by(|&a, &b| {
        let da = demands[a].normalized_magnitude(&reference);
        let db = demands[b].normalized_magnitude(&reference);
        db.partial_cmp(&da).expect("finite demands").then(a.cmp(&b))
    });
    order
}

fn zero_scores(n: usize) -> Vec<PlacementScore> {
    vec![
        PlacementScore {
            sla: 0.0,
            revenue_eur: 0.0,
            migration_eur: 0.0,
            energy_eur: 0.0,
            network_eur: 0.0,
        };
        n
    ]
}

/// The reference implementation: Algorithm 1 with its literal
/// O(VMs × hosts) inner loop. Kept callable at any size — it is the
/// oracle the indexed path is property-tested against and the baseline
/// the scaling bench times.
pub fn best_fit_full_scan(
    problem: &Problem,
    oracle: &dyn QosOracle,
    demands: &[Resources],
) -> BestFitResult {
    let _span = pamdc_obs::span!("bestfit_scan");
    let order = descending_order(problem, demands);

    let mut state = PlacementState::new(problem);
    let mut assignment = vec![problem.hosts[0].id; problem.vms.len()];
    let mut scores = zero_scores(problem.vms.len());
    let mut overflow_count = 0;
    let mut mem_tier_hits: u64 = 0;
    let mut scored_candidates = 0;

    let current_host_idx: Vec<Option<usize>> = problem
        .vms
        .iter()
        .map(|vm| vm.current_pm.and_then(|pm| problem.host_index(pm)))
        .collect();

    for &vm_idx in &order {
        let mut best_fit_choice: Option<(usize, PlacementScore)> = None;
        let mut best_any: Option<(usize, PlacementScore)> = None;
        let mut best_mem_ok: Option<(usize, PlacementScore)> = None;
        let mut stay_choice: Option<(usize, PlacementScore)> = None;
        for host_idx in 0..problem.hosts.len() {
            let score = marginal_profit(problem, oracle, &state, vm_idx, host_idx);
            scored_candidates += 1;
            let fits = state.fits(problem, host_idx, &demands[vm_idx]);
            if fits && current_host_idx[vm_idx] == Some(host_idx) {
                stay_choice = Some((host_idx, score));
            }
            if fits
                && best_fit_choice
                    .as_ref()
                    .is_none_or(|(_, b)| score.profit() > b.profit())
            {
                best_fit_choice = Some((host_idx, score));
            }
            // Overflow fallback tiers: a host whose RAM still holds the
            // VM beats any RAM-overcommitted one — memory is the one
            // resource contention cannot stretch. On memory-unconstrained
            // rounds every host passes this test, so the tiering changes
            // nothing (same scan order, same comparisons).
            if state.fits_memory(problem, host_idx, &demands[vm_idx])
                && best_mem_ok
                    .as_ref()
                    .is_none_or(|(_, b)| score.profit() > b.profit())
            {
                best_mem_ok = Some((host_idx, score));
            }
            if best_any
                .as_ref()
                .is_none_or(|(_, b)| score.profit() > b.profit())
            {
                best_any = Some((host_idx, score));
            }
        }
        // Hysteresis: staying put wins unless the challenger clears the
        // stickiness margin. Without it, per-tick load noise flips
        // near-tied profit comparisons and the fleet churns (migrations
        // are far more expensive in reality than in expectation).
        if let (Some((stay_hi, stay_score)), Some((best_hi, best_score))) =
            (&stay_choice, &best_fit_choice)
        {
            if best_hi != stay_hi
                && best_score.profit() - stay_score.profit() <= problem.stickiness_eur
            {
                best_fit_choice = stay_choice;
            }
        }
        let (host_idx, score) = match best_fit_choice {
            Some(choice) => choice,
            None => {
                overflow_count += 1;
                if best_mem_ok.is_some() {
                    mem_tier_hits += 1;
                }
                best_mem_ok.or(best_any).expect("at least one host")
            }
        };
        state.assign(problem, host_idx, demands[vm_idx]);
        assignment[vm_idx] = problem.hosts[host_idx].id;
        scores[vm_idx] = score;
    }

    flush_overflow_counters(overflow_count, mem_tier_hits);
    let schedule = Schedule { assignment };
    schedule.validate(problem);
    BestFitResult {
        schedule,
        scores,
        overflow_count,
        scored_candidates,
    }
}

/// Tallied per call, flushed once — overflow is rare, but the counters
/// stay off the placement hot path entirely.
fn flush_overflow_counters(overflow_count: usize, mem_tier_hits: u64) {
    if overflow_count > 0 {
        pamdc_obs::metrics::add(pamdc_obs::Counter::BestfitOverflow, overflow_count as u64);
        pamdc_obs::metrics::add(pamdc_obs::Counter::BestfitMemTierFallback, mem_tier_hits);
    }
}

/// Replaces `best` when `cand` scores strictly higher profit, or ties it
/// with a lower host index — exactly the winner the ascending full scan's
/// strict `>` comparison keeps (first host attaining the maximum).
fn take_better(best: &mut Option<(usize, PlacementScore)>, cand: (usize, PlacementScore)) {
    let replace = match best {
        None => true,
        Some((bi, bs)) => {
            cand.1.profit() > bs.profit() || (cand.1.profit() == bs.profit() && cand.0 < *bi)
        }
    };
    if replace {
        *best = Some(cand);
    }
}

/// Descending Best-Fit over the bucketed free-capacity index: per VM,
/// candidate groups come from a range scan instead of the full fleet,
/// and each group is scored once through its lowest-indexed member not
/// currently hosting the VM (all members share the score bit-for-bit;
/// the current host is scored individually because its profit carries no
/// migration term). Produces the same schedule, scores and overflow
/// count as [`best_fit_full_scan`] on any input.
pub fn best_fit_indexed(
    problem: &Problem,
    oracle: &dyn QosOracle,
    demands: &[Resources],
) -> BestFitResult {
    best_fit_indexed_mode(problem, oracle, demands, IndexMode::Exact)
}

/// [`best_fit_indexed`] over the coarse near-equivalence index: demand
/// bits leave the group key, so heterogeneous fleets still bucket into
/// few groups, and up to `top_k` members per group are checked and
/// scored individually. **Approximate** — the scored shortlist may miss
/// the true best host, so the bit-identity guarantee of the exact index
/// does not hold. Opt-in via [`SchedTuning::near_top_k`].
pub fn best_fit_indexed_near(
    problem: &Problem,
    oracle: &dyn QosOracle,
    demands: &[Resources],
    top_k: usize,
) -> BestFitResult {
    best_fit_indexed_mode(
        problem,
        oracle,
        demands,
        IndexMode::Near {
            top_k: top_k.max(1),
        },
    )
}

fn best_fit_indexed_mode(
    problem: &Problem,
    oracle: &dyn QosOracle,
    demands: &[Resources],
    mode: IndexMode,
) -> BestFitResult {
    let _span = pamdc_obs::span!("bestfit_index");
    let order = descending_order(problem, demands);

    let mut state = PlacementState::with_candidate_index_mode(problem, mode);
    let mut near_groups: u64 = 0;
    let mut assignment = vec![problem.hosts[0].id; problem.vms.len()];
    let mut scores = zero_scores(problem.vms.len());
    let mut overflow_count = 0;
    let mut mem_tier_hits: u64 = 0;
    let mut scored_candidates = 0;

    // Hot per-VM placement state, hoisted as struct-of-arrays: the full
    // scan re-derives the current-host index, the oracle demand and the
    // per-location transport inside its pair loop; here each is computed
    // once per VM (or per location) and read by every candidate.
    let current_host_idx: Vec<Option<usize>> = problem
        .vms
        .iter()
        .map(|vm| vm.current_pm.and_then(|pm| problem.host_index(pm)))
        .collect();
    let oracle_demands: Vec<Resources> = problem.vms.iter().map(|vm| oracle.demand(vm)).collect();
    let max_loc = problem
        .hosts
        .iter()
        .map(|h| h.location.index())
        .max()
        .expect("at least one host");
    // Per-location transport scratch, refilled lazily per VM.
    let mut transport: Vec<f64> = vec![f64::NAN; max_loc + 1];
    let mut transport_vm = usize::MAX;

    for &vm_idx in &order {
        let fit_demand = &demands[vm_idx];
        let score_demand = oracle_demands[vm_idx];
        let cur = current_host_idx[vm_idx];
        if transport_vm != vm_idx {
            transport.iter_mut().for_each(|t| *t = f64::NAN);
            transport_vm = vm_idx;
        }
        let mut transport_to = |host_idx: usize| -> f64 {
            let loc = problem.hosts[host_idx].location;
            let cached = transport[loc.index()];
            if cached.is_nan() {
                let t = weighted_transport_secs(&problem.vms[vm_idx].flows, loc, &problem.net);
                transport[loc.index()] = t;
                t
            } else {
                cached
            }
        };

        let mut best_fit_choice: Option<(usize, PlacementScore)> = None;
        let mut stay_choice: Option<(usize, PlacementScore)> = None;

        // Phase 1: hosts that fit. The range scan may yield groups that
        // only bucket-fit; one exact check per group settles it (fitting
        // is uniform within a group).
        {
            let index = state.candidate_index().expect("index enabled");
            for members in index.fitting_groups(fit_demand) {
                match mode {
                    IndexMode::Exact => {
                        let Some(rep) = members.iter().copied().find(|&hi| Some(hi) != cur) else {
                            continue; // the VM's own host is scored below
                        };
                        if !state.fits(problem, rep, fit_demand) {
                            continue;
                        }
                        let score = marginal_profit_hoisted(
                            problem,
                            oracle,
                            &state,
                            vm_idx,
                            rep,
                            score_demand,
                            transport_to(rep),
                        );
                        scored_candidates += 1;
                        take_better(&mut best_fit_choice, (rep, score));
                    }
                    IndexMode::Near { top_k } => {
                        // Members only share coarse buckets, not exact
                        // free capacity: check and score each of the
                        // first `top_k` candidates individually.
                        near_groups += 1;
                        for &hi in members.iter().filter(|&&hi| Some(hi) != cur).take(top_k) {
                            if !state.fits(problem, hi, fit_demand) {
                                continue;
                            }
                            let score = marginal_profit_hoisted(
                                problem,
                                oracle,
                                &state,
                                vm_idx,
                                hi,
                                score_demand,
                                transport_to(hi),
                            );
                            scored_candidates += 1;
                            take_better(&mut best_fit_choice, (hi, score));
                        }
                    }
                }
            }
        }
        if let Some(cur_hi) = cur {
            if state.fits(problem, cur_hi, fit_demand) {
                let score = marginal_profit_hoisted(
                    problem,
                    oracle,
                    &state,
                    vm_idx,
                    cur_hi,
                    score_demand,
                    transport_to(cur_hi),
                );
                scored_candidates += 1;
                stay_choice = Some((cur_hi, score));
                take_better(&mut best_fit_choice, (cur_hi, score));
            }
        }

        // Hysteresis, identical to the full scan.
        if let (Some((stay_hi, stay_score)), Some((best_hi, best_score))) =
            (&stay_choice, &best_fit_choice)
        {
            if best_hi != stay_hi
                && best_score.profit() - stay_score.profit() <= problem.stickiness_eur
            {
                best_fit_choice = stay_choice;
            }
        }

        let (host_idx, score) = match best_fit_choice {
            Some(choice) => choice,
            None => {
                // Overflow: nothing fits. Score every group once and
                // keep the full scan's tiers — RAM-fitting hosts beat
                // any RAM-overcommitted one.
                overflow_count += 1;
                let mut best_mem_ok: Option<(usize, PlacementScore)> = None;
                let mut best_any: Option<(usize, PlacementScore)> = None;
                let index = state.candidate_index().expect("index enabled");
                for members in index.all_groups() {
                    match mode {
                        IndexMode::Exact => {
                            let Some(rep) = members.iter().copied().find(|&hi| Some(hi) != cur)
                            else {
                                continue;
                            };
                            let score = marginal_profit_hoisted(
                                problem,
                                oracle,
                                &state,
                                vm_idx,
                                rep,
                                score_demand,
                                transport_to(rep),
                            );
                            scored_candidates += 1;
                            if state.fits_memory(problem, rep, fit_demand) {
                                take_better(&mut best_mem_ok, (rep, score));
                            }
                            take_better(&mut best_any, (rep, score));
                        }
                        IndexMode::Near { top_k } => {
                            near_groups += 1;
                            for &hi in members.iter().filter(|&&hi| Some(hi) != cur).take(top_k) {
                                let score = marginal_profit_hoisted(
                                    problem,
                                    oracle,
                                    &state,
                                    vm_idx,
                                    hi,
                                    score_demand,
                                    transport_to(hi),
                                );
                                scored_candidates += 1;
                                if state.fits_memory(problem, hi, fit_demand) {
                                    take_better(&mut best_mem_ok, (hi, score));
                                }
                                take_better(&mut best_any, (hi, score));
                            }
                        }
                    }
                }
                if let Some(cur_hi) = cur {
                    let score = marginal_profit_hoisted(
                        problem,
                        oracle,
                        &state,
                        vm_idx,
                        cur_hi,
                        score_demand,
                        transport_to(cur_hi),
                    );
                    scored_candidates += 1;
                    if state.fits_memory(problem, cur_hi, fit_demand) {
                        take_better(&mut best_mem_ok, (cur_hi, score));
                    }
                    take_better(&mut best_any, (cur_hi, score));
                }
                if best_mem_ok.is_some() {
                    mem_tier_hits += 1;
                }
                best_mem_ok.or(best_any).expect("at least one host")
            }
        };
        state.assign(problem, host_idx, demands[vm_idx]);
        assignment[vm_idx] = problem.hosts[host_idx].id;
        scores[vm_idx] = score;
    }

    flush_overflow_counters(overflow_count, mem_tier_hits);
    if near_groups > 0 {
        pamdc_obs::metrics::add(pamdc_obs::Counter::IndexNearShortlistHits, near_groups);
    }
    let schedule = Schedule { assignment };
    schedule.validate(problem);
    BestFitResult {
        schedule,
        scores,
        overflow_count,
        scored_candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{MonitorOracle, TrueOracle};
    use crate::problem::synthetic::problem;
    use crate::profit::evaluate_schedule;
    use pamdc_infra::ids::PmId;

    #[test]
    fn light_load_consolidates_onto_current_host() {
        // 3 light VMs already on host 0 with *local* clients; migrating
        // or powering more hosts would only cost.
        let mut p = problem(3, 4, 20.0);
        let home = p.hosts[0].location;
        for vm in &mut p.vms {
            for f in &mut vm.flows {
                f.source = home;
            }
        }
        let r = best_fit(&p, &TrueOracle::new());
        assert_eq!(r.schedule.assignment, vec![PmId(0); 3]);
        assert_eq!(r.schedule.migration_count(&p), 0);
        assert_eq!(r.overflow_count, 0);
    }

    #[test]
    fn heavy_load_deconsolidates() {
        // 4 heavy VMs cannot share one Atom; the true oracle spreads them.
        let p = problem(4, 4, 500.0);
        let r = best_fit(&p, &TrueOracle::new());
        let distinct: std::collections::BTreeSet<_> = r.schedule.assignment.iter().collect();
        assert!(
            distinct.len() >= 3,
            "heavy VMs must spread: {:?}",
            r.schedule.assignment
        );
    }

    #[test]
    fn respects_capacity_when_possible() {
        let p = problem(6, 6, 300.0);
        let o = TrueOracle::new();
        let r = best_fit(&p, &o);
        assert_eq!(r.overflow_count, 0);
        // Believed demand per host fits capacity.
        let per_host = r.schedule.demand_per_host(&p, |vm| o.demand(vm));
        for (d, h) in per_host.iter().zip(&p.hosts) {
            assert!(d.fits_within(&h.capacity), "{d:?} on {:?}", h.capacity);
        }
    }

    #[test]
    fn overflow_still_places_everyone() {
        // 10 giant VMs, 1 host: everything overflows but is placed.
        let p = problem(10, 1, 700.0);
        let r = best_fit(&p, &TrueOracle::new());
        assert_eq!(r.schedule.assignment.len(), 10);
        assert!(r.overflow_count > 0);
    }

    #[test]
    fn beats_or_matches_naive_spread_on_profit() {
        let p = problem(4, 4, 120.0);
        let o = TrueOracle::new();
        let bf = best_fit(&p, &o);
        let spread = Schedule {
            assignment: (0..4).map(PmId::from_index).collect(),
        };
        let bf_eval = evaluate_schedule(&p, &o, &bf.schedule);
        let spread_eval = evaluate_schedule(&p, &o, &spread);
        assert!(
            bf_eval.profit_eur >= spread_eval.profit_eur - 1e-9,
            "best-fit {} vs naive {}",
            bf_eval.profit_eur,
            spread_eval.profit_eur
        );
    }

    #[test]
    fn plain_bf_overconsolidates_versus_true_oracle() {
        // The paper's §V-B story. Under contention, monitors under-report:
        // halve the observed usage relative to truth.
        let mut p = problem(4, 4, 450.0);
        for vm in &mut p.vms {
            vm.observed_usage = vm.observed_usage * 0.4;
        }
        let plain = best_fit(&p, &MonitorOracle::plain());
        let truth = best_fit(&p, &TrueOracle::new());
        let hosts_plain: std::collections::BTreeSet<_> = plain.schedule.assignment.iter().collect();
        let hosts_truth: std::collections::BTreeSet<_> = truth.schedule.assignment.iter().collect();
        assert!(
            hosts_plain.len() <= hosts_truth.len(),
            "plain BF must use no more hosts than the informed scheduler"
        );
        // And the informed schedule achieves better (estimated-true) SLA.
        let o = TrueOracle::new();
        let e_plain = evaluate_schedule(&p, &o, &plain.schedule);
        let e_truth = evaluate_schedule(&p, &o, &truth.schedule);
        assert!(e_truth.mean_sla() >= e_plain.mean_sla());
    }

    #[test]
    fn deterministic_given_same_input() {
        let p = problem(5, 4, 200.0);
        let a = best_fit(&p, &TrueOracle::new());
        let b = best_fit(&p, &TrueOracle::new());
        assert_eq!(a.schedule, b.schedule);
    }

    #[test]
    fn large_fleets_dispatch_to_the_index_and_agree() {
        // 80 hosts ≥ INDEX_MIN_HOSTS: best_fit takes the indexed path.
        let p = problem(30, 80, 180.0);
        let o = TrueOracle::new();
        let demands: Vec<Resources> = p.vms.iter().map(|vm| o.demand(vm)).collect();
        let dispatched = best_fit(&p, &o);
        let indexed = best_fit_indexed(&p, &o, &demands);
        let full = best_fit_full_scan(&p, &o, &demands);
        assert_eq!(dispatched.schedule, indexed.schedule);
        assert_eq!(indexed.schedule, full.schedule);
        assert_eq!(indexed.scores, full.scores);
        assert_eq!(indexed.overflow_count, full.overflow_count);
        assert!(
            indexed.scored_candidates < full.scored_candidates / 2,
            "index must shrink the scored-candidate count: {} vs {}",
            indexed.scored_candidates,
            full.scored_candidates
        );
    }

    #[test]
    fn small_fleets_keep_the_full_scan() {
        let p = problem(4, 8, 200.0);
        let o = TrueOracle::new();
        let demands: Vec<Resources> = p.vms.iter().map(|vm| o.demand(vm)).collect();
        let dispatched = best_fit(&p, &o);
        let full = best_fit_full_scan(&p, &o, &demands);
        assert_eq!(dispatched.scored_candidates, full.scored_candidates);
        assert_eq!(dispatched.schedule, full.schedule);
    }
}
