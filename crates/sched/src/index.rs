//! Bucketed free-capacity candidate index — the sub-linear shortlist
//! behind Best-Fit on planet-scale fleets.
//!
//! The full scan of Algorithm 1 scores every (VM, host) pair. At fleet
//! sizes the paper never reached (thousands of hosts) that inner loop
//! dominates the round, yet almost all of its work is redundant: real
//! fleets are built from a handful of machine classes, and two hosts of
//! the same class holding bit-identical committed demand produce
//! **bit-identical** marginal profits for any VM not currently on them
//! (every term of the profit function reads only the host's static
//! fields and the accumulated [`PlacementState`] demand).
//!
//! The index therefore groups hosts into *equivalence groups* — same
//! static class, same assigned-VM count, same exact committed demand —
//! and keeps the groups in a `BTreeMap` ordered by quantized free
//! capacity over (CPU, RAM). One placement query:
//!
//! 1. range-scans groups whose quantized free CPU can possibly hold the
//!    demand (groups below the bucket floor are skipped wholesale),
//! 2. drops groups whose quantized free RAM cannot hold it,
//! 3. exact-checks and scores **one representative per surviving
//!    group** — the profit of every other member is the same bits.
//!
//! Quantization is conservative (floor of free capacity with the same
//! 1e-9 slack [`Resources::fits_within`] grants), so a host that truly
//! fits is never range-skipped; false positives are removed by the
//! representative's exact `fits` check. The VM's *current* host is the
//! one member whose profit differs (no migration term), so queries
//! exclude it from its group and Best-Fit scores it individually.
//!
//! Maintenance is incremental: assigning a VM changes one host's key,
//! which moves it between groups in O(log groups + group size).
//!
//! ## Near-equivalence mode
//!
//! Exact grouping needs bit-identical committed demand, so heterogeneous
//! fleets (every host carrying a different demand mix) degenerate to one
//! group per host and the shortlist stops paying for itself. The opt-in
//! [`IndexMode::Near`] drops the demand bits from the key: hosts of the
//! same class with the same assigned count land in the same group
//! whenever their free capacity falls in the same coarse bucket. Members
//! are then merely *similar*, so consumers score up to `top_k` members
//! per group instead of one representative — a bounded profit search
//! that trades the bit-identity guarantee for shortlisting on fleets the
//! exact mode cannot compress. Off by default; policies that enable it
//! advertise the relaxation in their report names.

use crate::problem::{HostInfo, Problem};
use pamdc_infra::resources::Resources;
use std::collections::BTreeMap;

/// Grouping discipline of a [`CandidateIndex`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum IndexMode {
    /// Exact equivalence: same class, same count, bit-identical committed
    /// demand. Scoring one representative per group is exact, so indexed
    /// consumers are bit-identical to their full scans.
    #[default]
    Exact,
    /// Coarse-bucket near-equivalence: the demand bits are dropped from
    /// the key, so same-class same-count hosts group by quantized free
    /// capacity alone. Consumers bound the within-group search to the
    /// first `top_k` members — approximate, and loudly labeled as such.
    Near {
        /// Members scored per group (≥ 1).
        top_k: usize,
    },
}

/// CPU bucket width, percent-of-core (half an Atom core).
const QUANT_CPU: f64 = 50.0;
/// RAM bucket width, MB.
const QUANT_MEM_MB: f64 = 512.0;
/// The slack [`Resources::fits_within`] grants; quantizing `free + EPS`
/// keeps the bucket floor conservative for demands that fit only thanks
/// to the epsilon.
const FIT_EPS: f64 = 1e-9;

/// One group's ordering key. Groups sort by quantized free CPU first —
/// the range dimension of fitting queries — then free RAM, then the
/// exact equivalence descriptor (class, count, committed-demand bits).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct GroupKey {
    /// Quantized free CPU after committed demand + hypervisor overhead.
    qcpu: i64,
    /// Quantized free RAM after committed demand.
    qmem: i64,
    /// Static equivalence class (see [`ClassKey`]).
    class: u32,
    /// Round-VMs assigned so far.
    count: usize,
    /// Exact committed raw demand (f64 bit patterns, so grouping is
    /// bitwise — never "close enough").
    demand_bits: [u64; 4],
}

/// The static, profit-relevant fingerprint of a host: every `HostInfo`
/// field [`crate::profit::marginal_profit`] reads. Hosts sharing a
/// `ClassKey` differ only in id and DC — neither enters the profit of a
/// non-resident VM.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct ClassKey {
    location: u32,
    capacity_bits: [u64; 4],
    energy_bits: u64,
    overhead_bits: u64,
    powered_on: bool,
    boot_bits: u64,
    /// Only `fixed_vm_count > 0` matters (it drives `host_active`); the
    /// fixed demand itself is part of the dynamic committed demand.
    has_fixed_residents: bool,
    /// Power curve by value: idle, cooling, then the per-core watts.
    power_bits: Vec<u64>,
}

fn bits(r: &Resources) -> [u64; 4] {
    [
        r.cpu.to_bits(),
        r.mem_mb.to_bits(),
        r.net_in_kbps.to_bits(),
        r.net_out_kbps.to_bits(),
    ]
}

fn class_key(host: &HostInfo) -> ClassKey {
    let mut power_bits = Vec::with_capacity(2 + host.power.active_core_watts.len());
    power_bits.push(host.power.idle_watts.to_bits());
    power_bits.push(host.power.cooling_factor.to_bits());
    power_bits.extend(host.power.active_core_watts.iter().map(|w| w.to_bits()));
    ClassKey {
        location: host.location.0,
        capacity_bits: bits(&host.capacity),
        energy_bits: host.energy_eur_kwh.to_bits(),
        overhead_bits: host.virt_overhead_cpu_per_vm.to_bits(),
        powered_on: host.powered_on,
        boot_bits: host.boot_penalty.as_secs_f64().to_bits(),
        has_fixed_residents: host.fixed_vm_count > 0,
        power_bits,
    }
}

/// The bucketed free-capacity index over a fleet's hosts. Built once per
/// Best-Fit run, updated on every assignment; see the module docs.
#[derive(Clone, Debug)]
pub struct CandidateIndex {
    /// Static class per host.
    class_of: Vec<u32>,
    /// Number of distinct static classes.
    n_classes: usize,
    /// Current group key per host.
    key_of: Vec<GroupKey>,
    /// Ordered groups: key → member host indices, ascending.
    groups: BTreeMap<GroupKey, Vec<usize>>,
    /// Grouping discipline (exact vs near-equivalence).
    mode: IndexMode,
}

impl CandidateIndex {
    /// Builds the index from a fleet and its committed per-host demand
    /// (`demand[hi]`, raw, excluding hypervisor overhead) and assigned-VM
    /// counts, grouping hosts per `mode`. Class ids are assigned
    /// first-seen in host order, so construction is deterministic.
    pub(crate) fn new_with_mode(
        problem: &Problem,
        demand: &[Resources],
        counts: &[usize],
        mode: IndexMode,
    ) -> Self {
        let mut class_ids: BTreeMap<ClassKey, u32> = BTreeMap::new();
        let mut class_of = Vec::with_capacity(problem.hosts.len());
        for host in &problem.hosts {
            let next = class_ids.len() as u32;
            let id = *class_ids.entry(class_key(host)).or_insert(next);
            class_of.push(id);
        }
        let n_classes = class_ids.len();

        let mut key_of = Vec::with_capacity(problem.hosts.len());
        let mut groups: BTreeMap<GroupKey, Vec<usize>> = BTreeMap::new();
        for hi in 0..problem.hosts.len() {
            let key = group_key(
                &problem.hosts[hi],
                class_of[hi],
                &demand[hi],
                counts[hi],
                mode,
            );
            key_of.push(key);
            groups.entry(key).or_default().push(hi); // ascending hi
        }
        CandidateIndex {
            class_of,
            n_classes,
            key_of,
            groups,
            mode,
        }
    }

    /// The grouping discipline this index was built with.
    pub fn mode(&self) -> IndexMode {
        self.mode
    }

    /// Moves `host_idx` to the group matching its new committed state.
    pub(crate) fn update_host(
        &mut self,
        problem: &Problem,
        host_idx: usize,
        demand: Resources,
        count: usize,
    ) {
        let old = self.key_of[host_idx];
        let new = group_key(
            &problem.hosts[host_idx],
            self.class_of[host_idx],
            &demand,
            count,
            self.mode,
        );
        if new == old {
            return;
        }
        let members = self.groups.get_mut(&old).expect("host's group exists");
        let pos = members.binary_search(&host_idx).expect("host in its group");
        members.remove(pos);
        if members.is_empty() {
            self.groups.remove(&old);
        }
        let members = self.groups.entry(new).or_default();
        let pos = members.binary_search(&host_idx).unwrap_err();
        members.insert(pos, host_idx);
        self.key_of[host_idx] = new;
    }

    /// Groups that can possibly hold `demand`: quantized free CPU is
    /// range-scanned, quantized free RAM filtered per group. Conservative
    /// — every truly fitting host's group is yielded; the caller
    /// exact-checks one representative per group. Members are ascending.
    pub fn fitting_groups(&self, demand: &Resources) -> impl Iterator<Item = &[usize]> {
        let min_qcpu = (demand.cpu / QUANT_CPU).floor() as i64;
        let min_qmem = (demand.mem_mb / QUANT_MEM_MB).floor() as i64;
        let lo = GroupKey {
            qcpu: min_qcpu,
            qmem: i64::MIN,
            class: 0,
            count: 0,
            demand_bits: [0; 4],
        };
        self.groups
            .range(lo..)
            .filter(move |(k, _)| k.qmem >= min_qmem)
            .map(|(_, members)| members.as_slice())
    }

    /// Every group (the overflow path scores them all). Members are
    /// ascending host indices.
    pub fn all_groups(&self) -> impl Iterator<Item = &[usize]> {
        self.groups.values().map(|members| members.as_slice())
    }

    /// Current number of equivalence groups (the per-VM scoring cost of
    /// the indexed path).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Number of distinct static host classes in the fleet.
    pub fn class_count(&self) -> usize {
        self.n_classes
    }
}

/// A host's current group key: free capacity after its committed demand
/// (including hypervisor overhead on CPU), quantized conservatively. In
/// near-equivalence mode the exact demand bits are dropped, merging
/// same-bucket same-class same-count hosts whose demands merely differ.
fn group_key(
    host: &HostInfo,
    class: u32,
    demand: &Resources,
    count: usize,
    mode: IndexMode,
) -> GroupKey {
    let used_cpu = demand.cpu + host.virt_overhead_cpu_per_vm * count as f64;
    let free_cpu = host.capacity.cpu - used_cpu + FIT_EPS;
    let free_mem = host.capacity.mem_mb - demand.mem_mb + FIT_EPS;
    GroupKey {
        qcpu: (free_cpu / QUANT_CPU).floor() as i64,
        qmem: (free_mem / QUANT_MEM_MB).floor() as i64,
        class,
        count,
        demand_bits: match mode {
            IndexMode::Exact => bits(demand),
            IndexMode::Near { .. } => [0; 4],
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::synthetic::problem;
    use crate::profit::PlacementState;

    #[test]
    fn uniform_fleet_collapses_to_few_groups() {
        // 64 identical Atoms over 4 locations; host 0 is powered on and
        // boot-free, so: 4 locations × (on/off splits only host 0's
        // location) = 5 static classes, each one group while empty.
        let p = problem(1, 64, 50.0);
        let state = PlacementState::with_candidate_index(&p);
        let ix = state.candidate_index().expect("index enabled");
        assert_eq!(ix.class_count(), 5);
        assert_eq!(ix.group_count(), 5);
    }

    #[test]
    fn near_mode_merges_heterogeneous_demands() {
        // Two different assignments land twin hosts in the same coarse
        // bucket: exact mode splits them (different demand bits), near
        // mode keeps them merged.
        let p = problem(2, 64, 50.0);
        let run = |mode: IndexMode| {
            let mut state = PlacementState::with_candidate_index_mode(&p, mode);
            // Hosts 5 and 9 share a class (9 % 4 == 5 % 4); the demands
            // differ by far less than a bucket quantum.
            state.assign(&p, 5, Resources::new(3.0, 16.0, 1.0, 1.0));
            state.assign(&p, 9, Resources::new(4.0, 17.0, 1.0, 1.0));
            state.candidate_index().unwrap().group_count()
        };
        let exact = run(IndexMode::Exact);
        let near = run(IndexMode::Near { top_k: 3 });
        assert_eq!(near, exact - 1, "near mode must merge the twins");
    }

    #[test]
    fn assignment_splits_a_group() {
        let p = problem(2, 64, 50.0);
        let mut state = PlacementState::with_candidate_index(&p);
        let before = state.candidate_index().unwrap().group_count();
        let d = Resources::new(30.0, 256.0, 10.0, 10.0);
        // Host 5 leaves its empty-twin group.
        state.assign(&p, 5, d);
        let after = state.candidate_index().unwrap().group_count();
        assert_eq!(after, before + 1);
        // A bit-identical assignment onto its twin host 9 (same class:
        // 9 % 4 == 5 % 4 == 1) joins host 5's new group, not another.
        state.assign(&p, 9, d);
        assert_eq!(state.candidate_index().unwrap().group_count(), after);
    }

    #[test]
    fn fitting_groups_never_skip_a_fitting_host() {
        let p = problem(4, 64, 300.0);
        let mut state = PlacementState::with_candidate_index(&p);
        state.assign(&p, 0, Resources::new(350.0, 3000.0, 100.0, 100.0));
        state.assign(&p, 7, Resources::new(120.0, 512.0, 50.0, 50.0));
        for demand in [
            Resources::new(40.0, 256.0, 10.0, 10.0),
            Resources::new(200.0, 1024.0, 10.0, 10.0),
            Resources::new(399.0, 4000.0, 10.0, 10.0),
            Resources::ZERO,
        ] {
            let truth: Vec<usize> = (0..p.hosts.len())
                .filter(|&hi| state.fits(&p, hi, &demand))
                .collect();
            let mut from_index: Vec<usize> = state
                .candidate_index()
                .unwrap()
                .fitting_groups(&demand)
                .flat_map(|members| members.iter().copied())
                .filter(|&hi| state.fits(&p, hi, &demand))
                .collect();
            from_index.sort_unstable();
            assert_eq!(from_index, truth, "demand {demand:?}");
        }
    }

    #[test]
    fn groups_are_exact_demand_matches() {
        // Two near-identical but not bit-identical demands must land
        // their hosts in different groups.
        let p = problem(2, 64, 50.0);
        let mut state = PlacementState::with_candidate_index(&p);
        let before = state.candidate_index().unwrap().group_count();
        state.assign(&p, 5, Resources::new(30.0, 256.0, 10.0, 10.0));
        state.assign(&p, 9, Resources::new(30.0 + 1e-12, 256.0, 10.0, 10.0));
        assert_eq!(state.candidate_index().unwrap().group_count(), before + 2);
    }
}
