//! The profit function — the paper's objective:
//!
//! ```text
//! Profit = Σ f_revenue(SLA[i]) − Σ f_penalty(Migr[i], Migl[i], ISize[i]) − Σ f_energycost(Power[h])
//! ```
//!
//! Two entry points: [`marginal_profit`] scores a single tentative
//! placement inside Best-Fit's inner loop (the `profit(v, h, ...)` call
//! of Algorithm 1), and [`evaluate_schedule`] scores a complete
//! assignment (used by the exact solver's objective and by tests).

use crate::index::CandidateIndex;
use crate::oracle::QosOracle;
use crate::problem::{Problem, Schedule, VmInfo};
use pamdc_infra::gateway::weighted_transport_secs;
use pamdc_infra::ids::LocationId;
use pamdc_infra::network::NetworkModel;
use pamdc_infra::resources::Resources;
use pamdc_simcore::time::SimDuration;

/// Inter-DC transfer charges a VM's client traffic would accrue over
/// `horizon` when hosted at `host_loc`: every flow whose source region is
/// remote crosses the provider network and pays the per-GB price (both
/// directions; zero on the paper's free network).
pub fn client_traffic_eur(
    vm: &VmInfo,
    host_loc: LocationId,
    net: &NetworkModel,
    horizon: SimDuration,
) -> f64 {
    if net.eur_per_gb_interdc == 0.0 {
        return 0.0;
    }
    let secs = horizon.as_secs_f64();
    vm.flows
        .iter()
        .filter(|f| f.source != host_loc)
        .map(|f| {
            let kb = f.req_per_sec * (f.kb_per_req + vm.load.kb_in_per_req) * secs;
            net.transfer_cost_eur(kb * 1e-6, f.source, host_loc)
        })
        .sum()
}

/// Transfer charge for shipping a VM image from `from` to `to` (zero
/// intra-DC and on the paper's free network).
pub fn image_transfer_eur(
    image_size_mb: f64,
    from: LocationId,
    to: LocationId,
    net: &NetworkModel,
) -> f64 {
    net.transfer_cost_eur(image_size_mb / 1000.0, from, to)
}

/// Mutable accumulation of a partial assignment during a round.
#[derive(Clone, Debug)]
pub struct PlacementState {
    pub(crate) demand: Vec<Resources>,
    pub(crate) vm_counts: Vec<usize>,
    /// Free-capacity candidate index, maintained incrementally by
    /// [`PlacementState::assign`] when enabled (the indexed Best-Fit
    /// path on large fleets). `None` keeps `assign` O(1) for consumers
    /// that scan hosts anyway (exact search, schedule evaluation).
    index: Option<Box<CandidateIndex>>,
}

impl PlacementState {
    /// Fresh state: only each host's fixed residents.
    pub fn new(problem: &Problem) -> Self {
        PlacementState {
            demand: problem.hosts.iter().map(|h| h.fixed_demand).collect(),
            vm_counts: vec![0; problem.hosts.len()],
            index: None,
        }
    }

    /// Fresh state with the bucketed free-capacity [`CandidateIndex`]
    /// enabled: host equivalence groups are rebuilt incrementally on
    /// every [`PlacementState::assign`].
    pub fn with_candidate_index(problem: &Problem) -> Self {
        Self::with_candidate_index_mode(problem, crate::index::IndexMode::Exact)
    }

    /// [`PlacementState::with_candidate_index`] under an explicit
    /// [`IndexMode`](crate::index::IndexMode) — near mode buckets hosts
    /// without their demand bits (coarser groups, approximate
    /// shortlists).
    pub fn with_candidate_index_mode(problem: &Problem, mode: crate::index::IndexMode) -> Self {
        let mut state = Self::new(problem);
        state.index = Some(Box::new(CandidateIndex::new_with_mode(
            problem,
            &state.demand,
            &state.vm_counts,
            mode,
        )));
        state
    }

    /// The candidate index, when enabled.
    pub fn candidate_index(&self) -> Option<&CandidateIndex> {
        self.index.as_deref()
    }

    /// Total believed demand on a host (fixed + assigned + hypervisor
    /// overhead for assigned VMs).
    pub fn host_demand(&self, problem: &Problem, host_idx: usize) -> Resources {
        let mut d = self.demand[host_idx];
        d.cpu += problem.hosts[host_idx].virt_overhead_cpu_per_vm * self.vm_counts[host_idx] as f64;
        d
    }

    /// Number of round-VMs assigned to a host so far.
    pub fn assigned_count(&self, host_idx: usize) -> usize {
        self.vm_counts[host_idx]
    }

    /// Whether the host would be running anything after the assignments
    /// so far (fixed residents or newly assigned VMs).
    pub fn host_active(&self, problem: &Problem, host_idx: usize) -> bool {
        problem.hosts[host_idx].fixed_vm_count > 0 || self.vm_counts[host_idx] > 0
    }

    /// Commits a VM (with believed demand `demand`) onto a host,
    /// keeping the candidate index (when enabled) in sync.
    pub fn assign(&mut self, problem: &Problem, host_idx: usize, demand: Resources) {
        self.demand[host_idx] += demand;
        self.vm_counts[host_idx] += 1;
        if let Some(index) = &mut self.index {
            index.update_host(
                problem,
                host_idx,
                self.demand[host_idx],
                self.vm_counts[host_idx],
            );
        }
    }

    /// Does `demand` fit into the host's remaining believed capacity?
    pub fn fits(&self, problem: &Problem, host_idx: usize, demand: &Resources) -> bool {
        let host = &problem.hosts[host_idx];
        let mut after = self.host_demand(problem, host_idx);
        after += *demand;
        after.cpu += host.virt_overhead_cpu_per_vm; // the newcomer's overhead
        after.fits_within(&host.capacity)
    }

    /// Does `demand`'s **memory** alone fit the host's remaining RAM?
    /// The relaxed test Best-Fit's overflow path uses when nothing fits
    /// fully: CPU and network overcommit are survivable (contention
    /// degrades every tenant proportionally), RAM overcommit is not, so
    /// an out-of-capacity round still avoids it wherever possible.
    pub fn fits_memory(&self, problem: &Problem, host_idx: usize, demand: &Resources) -> bool {
        const EPS: f64 = 1e-9;
        self.demand[host_idx].mem_mb + demand.mem_mb
            <= problem.hosts[host_idx].capacity.mem_mb + EPS
    }
}

/// Believed per-VM demands and per-host totals under the *current*
/// placement, computed once per scheduling round and shared by every
/// consumer (candidate filter, offer filter, hierarchical round) instead
/// of each rebuilding them from O(V) oracle queries.
#[derive(Clone, Debug)]
pub struct BelievedTotals {
    /// Oracle demand per problem-VM.
    pub demands: Vec<Resources>,
    /// Per-host believed demand excluding hypervisor overhead
    /// (fixed residents + currently-placed VMs).
    pub raw: Vec<Resources>,
    /// Currently-placed VMs per host.
    pub counts: Vec<usize>,
}

impl BelievedTotals {
    /// Totals under each VM's `current_pm` placement.
    pub fn from_current_placement(problem: &Problem, oracle: &dyn QosOracle) -> Self {
        let demands: Vec<Resources> = problem.vms.iter().map(|vm| oracle.demand(vm)).collect();
        Self::from_current_placement_with(problem, demands)
    }

    /// [`BelievedTotals::from_current_placement`] over an already-known
    /// demand vector — callers holding the round's demands must not pay
    /// a second O(V) oracle pass (demand is placement-independent, so a
    /// vector computed before re-homing stays valid).
    pub fn from_current_placement_with(problem: &Problem, demands: Vec<Resources>) -> Self {
        let host_of: Vec<Option<usize>> = problem
            .vms
            .iter()
            .map(|vm| vm.current_pm.and_then(|pm| problem.host_index(pm)))
            .collect();
        Self::from_placement(problem, demands, &host_of)
    }

    /// Totals under an explicit per-VM host assignment (`None` = not
    /// placed on any in-problem host). This is the placement-only
    /// snapshot the hierarchical round uses after its per-DC passes: the
    /// effective placement lives in a vector, so no `Problem` clone is
    /// needed to describe "where everything sits now".
    pub fn from_placement(
        problem: &Problem,
        demands: Vec<Resources>,
        host_of: &[Option<usize>],
    ) -> Self {
        debug_assert_eq!(
            demands.len(),
            problem.vms.len(),
            "one believed demand per VM"
        );
        debug_assert_eq!(host_of.len(), problem.vms.len(), "one host slot per VM");
        let mut raw: Vec<Resources> = problem.hosts.iter().map(|h| h.fixed_demand).collect();
        let mut counts: Vec<usize> = vec![0; problem.hosts.len()];
        for (slot, demand) in host_of.iter().zip(&demands) {
            if let Some(hi) = *slot {
                raw[hi] += *demand;
                counts[hi] += 1;
            }
        }
        BelievedTotals {
            demands,
            raw,
            counts,
        }
    }

    /// Believed total on a host including hypervisor overhead for its
    /// currently-placed VMs.
    pub fn with_overhead(&self, problem: &Problem, hi: usize) -> Resources {
        let mut d = self.raw[hi];
        d.cpu += problem.hosts[hi].virt_overhead_cpu_per_vm * self.counts[hi] as f64;
        d
    }
}

/// Components of one tentative placement's score.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlacementScore {
    /// Estimated SLA fulfillment.
    pub sla: f64,
    /// Revenue over the horizon at that SLA, €.
    pub revenue_eur: f64,
    /// Migration penalty (lost revenue during blackout + fee), €.
    pub migration_eur: f64,
    /// Marginal energy cost of the placement over the horizon, €.
    pub energy_eur: f64,
    /// Inter-DC transfer charges (client traffic + image shipping), €.
    pub network_eur: f64,
}

impl PlacementScore {
    /// Net profit, €.
    pub fn profit(&self) -> f64 {
        self.revenue_eur - self.migration_eur - self.energy_eur - self.network_eur
    }
}

/// Scores placing `vm_idx` on `host_idx` given the partial assignment in
/// `state` — Algorithm 1's `profit(v, h, res_req, res_avail)`.
pub fn marginal_profit(
    problem: &Problem,
    oracle: &dyn QosOracle,
    state: &PlacementState,
    vm_idx: usize,
    host_idx: usize,
) -> PlacementScore {
    let vm = &problem.vms[vm_idx];
    let host = &problem.hosts[host_idx];
    let demand = oracle.demand(vm);
    let transport = weighted_transport_secs(&vm.flows, host.location, &problem.net);
    marginal_profit_hoisted(problem, oracle, state, vm_idx, host_idx, demand, transport)
}

/// [`marginal_profit`] with the per-pair invariants precomputed: the
/// VM's oracle demand (identical for every host) and the transport
/// latency (identical for every host at the same location). The indexed
/// Best-Fit path hoists both out of its candidate loop; `marginal_profit`
/// delegates here, so both paths share one code path and one float
/// evaluation order — the bit-identity guarantee the shortlist
/// equivalence proptests rely on.
pub fn marginal_profit_hoisted(
    problem: &Problem,
    oracle: &dyn QosOracle,
    state: &PlacementState,
    vm_idx: usize,
    host_idx: usize,
    demand: Resources,
    transport: f64,
) -> PlacementScore {
    let vm = &problem.vms[vm_idx];
    let host = &problem.hosts[host_idx];

    // Tentative totals on the host.
    let mut total = state.host_demand(problem, host_idx);
    total += demand;
    total.cpu += host.virt_overhead_cpu_per_vm;

    // QoS estimate, revenue-scaled by the host's availability over the
    // horizon: a booting host serves nothing until it is up, and a
    // crashed host serves nothing until repaired — whether the VM is
    // staying or arriving.
    let sla = oracle.sla(vm, host, &total, transport);
    let available = problem.horizon - host.boot_penalty.min(problem.horizon);
    let revenue_eur = problem.billing.revenue(sla, available);

    // Migration penalty: revenue blacked out while the image moves,
    // plus any fixed fee. The VM earns nothing while frozen (§IV-A);
    // the destination's unavailability is already priced above.
    let migration_eur = match (vm.current_pm, vm.current_location) {
        (Some(cur), Some(cur_loc)) if cur != host.id => {
            let blackout = problem
                .net
                .migration_duration(vm.image_size_mb, cur_loc, host.location);
            let lost = problem.billing.revenue(1.0, blackout.min(problem.horizon));
            // Every request arriving during the blackout queues and must
            // be drained later at degraded SLA; a VM already dragging a
            // backlog compounds that debt. Scale the penalty accordingly.
            let queue_debt = if vm.load.rps > 0.0 {
                (vm.load.backlog / (vm.load.rps * blackout.as_secs_f64().max(1.0))).min(3.0)
            } else {
                0.0
            };
            lost * (1.0 + queue_debt) + problem.billing.migration_fee_eur
        }
        _ => 0.0,
    };

    // Marginal energy: facility draw after minus before, billed at the
    // host's tariff for the horizon. A cold, empty host starts at 0 W —
    // powering it on is exactly what the marginal cost captures (the
    // consolidation incentive).
    let watts_before = if state.host_active(problem, host_idx) || host.powered_on {
        host.power
            .facility_watts(state.host_demand(problem, host_idx).cpu)
    } else {
        0.0
    };
    let watts_after = host.power.facility_watts(total.cpu);
    let delta_w = (watts_after - watts_before).max(0.0);
    let energy_eur = delta_w * problem.horizon.as_hours_f64() / 1000.0 * host.energy_eur_kwh;

    // Network charges: remote client traffic over the horizon, plus the
    // image shipment if this placement migrates the VM.
    let mut network_eur = client_traffic_eur(vm, host.location, &problem.net, problem.horizon);
    if let (Some(cur), Some(cur_loc)) = (vm.current_pm, vm.current_location) {
        if cur != host.id {
            network_eur +=
                image_transfer_eur(vm.image_size_mb, cur_loc, host.location, &problem.net);
        }
    }

    PlacementScore {
        sla,
        revenue_eur,
        migration_eur,
        energy_eur,
        network_eur,
    }
}

/// Full evaluation of a complete schedule under an oracle's beliefs.
#[derive(Clone, Debug)]
pub struct ScheduleEval {
    /// Net estimated profit over the horizon, €.
    pub profit_eur: f64,
    /// Revenue component, €.
    pub revenue_eur: f64,
    /// Energy component, €.
    pub energy_eur: f64,
    /// Migration penalties, €.
    pub migration_eur: f64,
    /// Inter-DC transfer charges, €.
    pub network_eur: f64,
    /// Estimated SLA per problem-VM.
    pub per_vm_sla: Vec<f64>,
    /// Hosts that end up running at least one VM.
    pub active_hosts: usize,
}

impl ScheduleEval {
    /// Mean estimated SLA across VMs (0 when there are none).
    pub fn mean_sla(&self) -> f64 {
        if self.per_vm_sla.is_empty() {
            0.0
        } else {
            self.per_vm_sla.iter().sum::<f64>() / self.per_vm_sla.len() as f64
        }
    }
}

/// Scores a complete schedule: estimated SLA and revenue per VM under the
/// final co-location, migration penalties, and per-host energy. Hosts
/// left empty are assumed powered down by the manager after the round
/// (they cost nothing over the horizon).
pub fn evaluate_schedule(
    problem: &Problem,
    oracle: &dyn QosOracle,
    schedule: &Schedule,
) -> ScheduleEval {
    schedule.validate(problem);
    // Final believed demand per host.
    let mut state = PlacementState::new(problem);
    let host_of: Vec<usize> = schedule
        .assignment
        .iter()
        .map(|&pm| problem.host_index(pm).expect("validated"))
        .collect();
    for (vm_idx, &hi) in host_of.iter().enumerate() {
        state.assign(problem, hi, oracle.demand(&problem.vms[vm_idx]));
    }

    let mut revenue = 0.0;
    let mut migration = 0.0;
    let mut network = 0.0;
    let mut per_vm_sla = Vec::with_capacity(problem.vms.len());
    for (vm_idx, &hi) in host_of.iter().enumerate() {
        let vm = &problem.vms[vm_idx];
        let host = &problem.hosts[hi];
        let total = state.host_demand(problem, hi);
        let transport = weighted_transport_secs(&vm.flows, host.location, &problem.net);
        let sla = oracle.sla(vm, host, &total, transport);
        per_vm_sla.push(sla);
        let available = problem.horizon - host.boot_penalty.min(problem.horizon);
        revenue += problem.billing.revenue(sla, available);
        network += client_traffic_eur(vm, host.location, &problem.net, problem.horizon);
        if let (Some(cur), Some(cur_loc)) = (vm.current_pm, vm.current_location) {
            if cur != host.id {
                let blackout =
                    problem
                        .net
                        .migration_duration(vm.image_size_mb, cur_loc, host.location);
                let lost = problem.billing.revenue(1.0, blackout.min(problem.horizon));
                let queue_debt = if vm.load.rps > 0.0 {
                    (vm.load.backlog / (vm.load.rps * blackout.as_secs_f64().max(1.0))).min(3.0)
                } else {
                    0.0
                };
                migration += lost * (1.0 + queue_debt) + problem.billing.migration_fee_eur;
                network +=
                    image_transfer_eur(vm.image_size_mb, cur_loc, host.location, &problem.net);
            }
        }
    }

    let mut energy = 0.0;
    let mut active_hosts = 0;
    for hi in 0..problem.hosts.len() {
        if state.host_active(problem, hi) {
            active_hosts += 1;
            let watts = problem.hosts[hi]
                .power
                .facility_watts(state.host_demand(problem, hi).cpu);
            energy +=
                watts * problem.horizon.as_hours_f64() / 1000.0 * problem.hosts[hi].energy_eur_kwh;
        }
    }

    ScheduleEval {
        profit_eur: revenue - energy - migration - network,
        revenue_eur: revenue,
        energy_eur: energy,
        migration_eur: migration,
        network_eur: network,
        per_vm_sla,
        active_hosts,
    }
}

/// Convenience: the believed-demand closure most schedulers need.
pub fn demand_fn<'a>(oracle: &'a dyn QosOracle) -> impl Fn(&VmInfo) -> Resources + 'a {
    move |vm| oracle.demand(vm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{MonitorOracle, TrueOracle};
    use crate::problem::synthetic::problem;
    use pamdc_infra::ids::PmId;

    #[test]
    fn staying_home_avoids_migration_penalty() {
        let p = problem(1, 4, 50.0);
        let o = MonitorOracle::plain();
        let state = PlacementState::new(&p);
        let stay = marginal_profit(&p, &o, &state, 0, 0);
        let moveaway = marginal_profit(&p, &o, &state, 0, 1);
        assert_eq!(stay.migration_eur, 0.0);
        assert!(moveaway.migration_eur > 0.0);
    }

    #[test]
    fn cross_dc_migration_costs_more_than_local() {
        // Hosts 0..4 are in four different DCs; add a 5th host in DC of
        // host 0 by reusing index pattern (i % 4): host 4 shares DC 0.
        let p = problem(1, 5, 50.0);
        let o = MonitorOracle::plain();
        let state = PlacementState::new(&p);
        let local = marginal_profit(&p, &o, &state, 0, 4); // same DC as current
        let remote = marginal_profit(&p, &o, &state, 0, 2);
        assert!(remote.migration_eur > local.migration_eur);
    }

    #[test]
    fn powering_a_cold_host_costs_idle_energy() {
        let p = problem(1, 4, 50.0);
        let o = MonitorOracle::plain();
        let state = PlacementState::new(&p);
        // Host 0 is powered_on in the fixture; host 1 is cold.
        let warm = marginal_profit(&p, &o, &state, 0, 0);
        let cold = marginal_profit(&p, &o, &state, 0, 1);
        assert!(
            cold.energy_eur > warm.energy_eur,
            "cold start {} must exceed warm marginal {}",
            cold.energy_eur,
            warm.energy_eur
        );
    }

    #[test]
    fn consolidation_beats_spreading_when_sla_is_safe() {
        // Two light VMs, two hosts in the same DC: piling both onto the
        // powered host must out-profit powering the second host.
        let mut p = problem(2, 2, 30.0);
        // Make both hosts the same DC/location to neutralize latency.
        let h0 = p.hosts[0].clone();
        p.hosts[1].dc = h0.dc;
        p.hosts[1].location = h0.location;
        p.hosts[1].energy_eur_kwh = h0.energy_eur_kwh;
        p.vms[1].current_pm = Some(PmId(0));
        p.vms[1].current_location = Some(h0.location);
        let o = TrueOracle::new();
        let consolidated = Schedule {
            assignment: vec![PmId(0), PmId(0)],
        };
        let spread = Schedule {
            assignment: vec![PmId(0), PmId(1)],
        };
        let ec = evaluate_schedule(&p, &o, &consolidated);
        let es = evaluate_schedule(&p, &o, &spread);
        assert!(
            ec.profit_eur > es.profit_eur,
            "{} vs {}",
            ec.profit_eur,
            es.profit_eur
        );
        assert_eq!(ec.active_hosts, 1);
        assert_eq!(es.active_hosts, 2);
    }

    #[test]
    fn overload_flips_the_decision_under_true_oracle() {
        // Two very heavy VMs: a truthful oracle sees the SLA collapse
        // when consolidated and prefers to spread despite the energy.
        let mut p = problem(2, 2, 600.0);
        let h0 = p.hosts[0].clone();
        p.hosts[1].dc = h0.dc;
        p.hosts[1].location = h0.location;
        p.hosts[1].energy_eur_kwh = h0.energy_eur_kwh;
        p.vms[1].current_pm = Some(PmId(0));
        p.vms[1].current_location = Some(h0.location);
        let o = TrueOracle::new();
        let consolidated = Schedule {
            assignment: vec![PmId(0), PmId(0)],
        };
        let spread = Schedule {
            assignment: vec![PmId(0), PmId(1)],
        };
        let ec = evaluate_schedule(&p, &o, &consolidated);
        let es = evaluate_schedule(&p, &o, &spread);
        assert!(
            es.profit_eur > ec.profit_eur,
            "spreading {} must beat crushing {}",
            es.profit_eur,
            ec.profit_eur
        );
        assert!(es.mean_sla() > ec.mean_sla());
    }

    #[test]
    fn failed_hosts_earn_nothing_so_policies_evacuate() {
        use pamdc_simcore::time::SimDuration;
        // Host 0 (the current home) is crashed for longer than the
        // horizon: staying earns zero revenue, so any live host wins
        // despite its migration penalty.
        let mut p = problem(1, 4, 50.0);
        p.hosts[0].powered_on = false;
        p.hosts[0].boot_penalty = SimDuration::from_hours(2);
        for h in 1..4 {
            p.hosts[h].powered_on = true;
            p.hosts[h].boot_penalty = SimDuration::ZERO;
        }
        let o = TrueOracle::new();
        let state = PlacementState::new(&p);
        let stay = marginal_profit(&p, &o, &state, 0, 0);
        assert_eq!(stay.revenue_eur, 0.0, "a dead host earns nothing");
        let best_alive = (1..4)
            .map(|h| marginal_profit(&p, &o, &state, 0, h).profit())
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            best_alive > stay.profit(),
            "evacuating ({best_alive}) must beat staying ({})",
            stay.profit()
        );
    }

    #[test]
    fn network_pricing_penalizes_remote_hosting() {
        // Same problem on a free vs priced network: with per-GB transit
        // charges, hosting VM 0 (Brisbane clients) in Barcelona costs
        // network euros that hosting at home does not.
        let mut p = problem(1, 4, 120.0);
        p.net = std::sync::Arc::new(pamdc_infra::network::NetworkModel::paper_priced(0.05));
        let o = TrueOracle::new();
        let state = PlacementState::new(&p);
        let home = marginal_profit(&p, &o, &state, 0, 0);
        let remote = marginal_profit(&p, &o, &state, 0, 2);
        assert_eq!(home.network_eur, 0.0, "local clients ride free");
        assert!(
            remote.network_eur > 0.0,
            "remote hosting pays transit + image"
        );
        // Free network: both are zero.
        let mut free = problem(1, 4, 120.0);
        free.net = std::sync::Arc::new(pamdc_infra::network::NetworkModel::paper());
        let r = marginal_profit(&free, &o, &PlacementState::new(&free), 0, 2);
        assert_eq!(r.network_eur, 0.0);
    }

    #[test]
    fn schedule_eval_includes_network_costs() {
        let mut p = problem(2, 4, 80.0);
        p.net = std::sync::Arc::new(pamdc_infra::network::NetworkModel::paper_priced(0.05));
        let o = TrueOracle::new();
        // Everyone stays on host 0 (Brisbane): VM 1's Bangalore clients
        // pay transit.
        let stay = Schedule {
            assignment: vec![PmId(0), PmId(0)],
        };
        let eval = evaluate_schedule(&p, &o, &stay);
        assert!(eval.network_eur > 0.0);
        assert!(
            (eval.profit_eur
                - (eval.revenue_eur - eval.energy_eur - eval.migration_eur - eval.network_eur))
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn placement_state_tracks_fit() {
        let p = problem(2, 1, 50.0);
        let mut state = PlacementState::new(&p);
        let big = Resources::new(390.0, 1024.0, 10.0, 10.0);
        assert!(state.fits(&p, 0, &big));
        state.assign(&p, 0, big);
        assert!(!state.fits(&p, 0, &big), "second giant VM cannot fit");
        assert_eq!(state.assigned_count(0), 1);
    }

    #[test]
    fn latency_differentiates_hosts_for_remote_clients() {
        // VM 0's clients are in Brisbane (home = ALL[0]); hosting it in
        // Brisbane must estimate a better SLA than hosting in Barcelona.
        let p = problem(1, 4, 120.0);
        let o = TrueOracle::new();
        let state = PlacementState::new(&p);
        let brisbane = marginal_profit(&p, &o, &state, 0, 0);
        let barcelona = marginal_profit(&p, &o, &state, 0, 2);
        assert!(brisbane.sla >= barcelona.sla);
    }
}
