//! QoS oracles: where the scheduler's beliefs come from.
//!
//! The paper's central comparison is *what information drives Best-Fit*:
//!
//! * [`MonitorOracle`] — plain BF: sizes VMs by the last monitoring
//!   window and guesses SLA from fit + client latency only. Under
//!   contention the window under-reports true demand (a starved VM shows
//!   the usage it got), so this oracle over-consolidates.
//! * [`OverbookOracle`] — BF-OB: the same, but books `factor ×` the
//!   observation (the paper uses 2×) to absorb surprises — safe but
//!   wasteful.
//! * [`MlOracle`] — BF-ML: predicts demand and SLA with the Table-I
//!   models from load characteristics, which *do* reflect true demand.
//! * [`TrueOracle`] — an upper-bound ablation with ground-truth access
//!   (not available to a real system; used to measure the ML gap).

use crate::problem::{HostInfo, VmInfo};
use pamdc_infra::resources::Resources;
use pamdc_ml::predictors::{PredictionTarget, PredictorSuite};
use pamdc_perf::contention::{share_proportionally, share_work_conserving};
use pamdc_perf::demand::required_resources;
use pamdc_perf::rt::{evaluate, RtModelConfig};
use std::sync::Arc;

/// A scheduler's belief system: demand estimates and SLA forecasts.
pub trait QosOracle: Send + Sync {
    /// Estimated resource demand of `vm` over the coming period.
    fn demand(&self, vm: &VmInfo) -> Resources;

    /// Estimated SLA fulfillment of `vm` if placed on `host` where the
    /// total demand (everyone incl. `vm` and fixed residents) is
    /// `host_total_demand`, and clients reach it with `transport_secs`
    /// mean latency.
    fn sla(
        &self,
        vm: &VmInfo,
        host: &HostInfo,
        host_total_demand: &Resources,
        transport_secs: f64,
    ) -> f64;

    /// Display name for reports.
    fn name(&self) -> &'static str;
}

/// Plain Best-Fit beliefs: last monitoring window + latency.
#[derive(Clone, Debug, Default)]
pub struct MonitorOracle {
    /// Optional multiplier on the observation (1.0 = plain BF).
    pub booking_factor: f64,
}

impl MonitorOracle {
    /// Plain BF (factor 1).
    pub fn plain() -> Self {
        MonitorOracle {
            booking_factor: 1.0,
        }
    }

    /// BF-OB: the paper's 2× overbooking variant.
    pub fn overbooked() -> Self {
        MonitorOracle {
            booking_factor: 2.0,
        }
    }
}

impl QosOracle for MonitorOracle {
    fn demand(&self, vm: &VmInfo) -> Resources {
        vm.observed_usage * self.booking_factor
    }

    fn sla(
        &self,
        vm: &VmInfo,
        host: &HostInfo,
        host_total_demand: &Resources,
        transport_secs: f64,
    ) -> f64 {
        // Reactive estimate: if (believed) demand fits, assume processing
        // stays at the no-stress baseline and only client latency moves
        // the needle; if it does not fit, degrade by the overflow ratio.
        // This deliberately reproduces the blind spot of the non-ML
        // scheduler.
        let base_rt = 0.05 + transport_secs;
        let fit = host_total_demand.dominant_share(&host.capacity);
        let est_rt = if fit <= 1.0 {
            base_rt
        } else {
            base_rt * fit * fit
        };
        vm.sla.fulfillment(est_rt)
    }

    fn name(&self) -> &'static str {
        if self.booking_factor > 1.0 {
            "BF-OB"
        } else {
            "BF"
        }
    }
}

/// BF-OB: the overbooking variant (type alias of convenience).
pub type OverbookOracle = MonitorOracle;

/// ML-driven beliefs: the Table-I predictor suite.
#[derive(Clone)]
pub struct MlOracle {
    suite: Arc<PredictorSuite>,
}

impl MlOracle {
    /// Wraps a trained suite (shared: cloning the oracle shares the
    /// models, which is what parallel experiment arms want).
    pub fn new(suite: Arc<PredictorSuite>) -> Self {
        MlOracle { suite }
    }

    /// Wraps an owned suite.
    pub fn from_suite(suite: PredictorSuite) -> Self {
        MlOracle {
            suite: Arc::new(suite),
        }
    }

    /// Borrow the underlying suite (e.g. to print Table I).
    pub fn suite(&self) -> &PredictorSuite {
        &self.suite
    }

    fn load_features(vm: &VmInfo) -> [f64; 5] {
        [
            vm.load.rps,
            vm.load.kb_in_per_req,
            vm.load.kb_out_per_req,
            vm.load.cpu_ms_per_req,
            vm.load.backlog,
        ]
    }
}

impl QosOracle for MlOracle {
    fn demand(&self, vm: &VmInfo) -> Resources {
        let f = Self::load_features(vm);
        Resources {
            cpu: self.suite.predict(PredictionTarget::VmCpu, &f),
            mem_mb: self.suite.predict(PredictionTarget::VmMem, &f),
            net_in_kbps: self.suite.predict(PredictionTarget::VmIn, &f),
            net_out_kbps: self.suite.predict(PredictionTarget::VmOut, &f),
        }
    }

    fn sla(
        &self,
        vm: &VmInfo,
        host: &HostInfo,
        host_total_demand: &Resources,
        transport_secs: f64,
    ) -> f64 {
        let demand = self.demand(vm);
        // Predicted grant: proportional share of the host under the
        // tentative total demand.
        let cpu_factor = if host_total_demand.cpu > host.capacity.cpu && host_total_demand.cpu > 0.0
        {
            host.capacity.cpu / host_total_demand.cpu
        } else {
            1.0
        };
        let mem_factor =
            if host_total_demand.mem_mb > host.capacity.mem_mb && host_total_demand.mem_mb > 0.0 {
                host.capacity.mem_mb / host_total_demand.mem_mb
            } else {
                1.0
            };
        let granted_cpu = demand.cpu * cpu_factor;
        let features = [
            vm.load.rps,
            vm.load.cpu_ms_per_req,
            demand.cpu,
            granted_cpu,
            mem_factor,
            vm.load.backlog,
            transport_secs,
        ];
        self.suite.predict(PredictionTarget::VmSla, &features)
    }

    fn name(&self) -> &'static str {
        "BF-ML"
    }
}

/// Ground-truth beliefs (ablation upper bound).
#[derive(Clone, Debug, Default)]
pub struct TrueOracle {
    /// RT model configuration (deterministic recommended).
    pub rt_cfg: RtModelConfig,
    /// Horizon seconds used for backlog drain in demand computation.
    pub drain_secs: f64,
}

impl TrueOracle {
    /// A deterministic true oracle with a 10-minute horizon.
    pub fn new() -> Self {
        TrueOracle {
            rt_cfg: RtModelConfig::deterministic(),
            drain_secs: 600.0,
        }
    }
}

impl QosOracle for TrueOracle {
    fn demand(&self, vm: &VmInfo) -> Resources {
        required_resources(&vm.load, &vm.perf, self.drain_secs)
    }

    fn sla(
        &self,
        vm: &VmInfo,
        host: &HostInfo,
        host_total_demand: &Resources,
        transport_secs: f64,
    ) -> f64 {
        let required = self.demand(vm);
        let rest = host_total_demand.saturating_sub(&required);
        let demands = [required, rest];
        let granted = share_proportionally(&demands, host.capacity);
        let burst = share_work_conserving(&demands, host.capacity);
        let outcome = evaluate(
            &vm.load,
            &vm.perf,
            &required,
            &granted[0],
            &burst[0],
            &self.rt_cfg,
            self.drain_secs,
            None,
        );
        vm.sla.fulfillment(outcome.rt_process_secs + transport_secs)
    }

    fn name(&self) -> &'static str {
        "BF-True"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::synthetic::problem;

    #[test]
    fn monitor_oracle_books_observation() {
        let p = problem(2, 2, 50.0);
        let plain = MonitorOracle::plain();
        let ob = MonitorOracle::overbooked();
        let d1 = plain.demand(&p.vms[0]);
        let d2 = ob.demand(&p.vms[0]);
        assert!((d2.cpu - 2.0 * d1.cpu).abs() < 1e-9);
        assert_eq!(plain.name(), "BF");
        assert_eq!(ob.name(), "BF-OB");
    }

    #[test]
    fn monitor_oracle_blind_below_capacity() {
        let p = problem(1, 1, 50.0);
        let o = MonitorOracle::plain();
        let host = &p.hosts[0];
        // Anything that "fits" looks perfect apart from latency.
        let light = Resources::new(100.0, 1024.0, 10.0, 10.0);
        let sla = o.sla(&p.vms[0], host, &light, 0.01);
        assert_eq!(sla, 1.0);
        // Overflow degrades.
        let heavy = Resources::new(800.0, 1024.0, 10.0, 10.0);
        assert!(o.sla(&p.vms[0], host, &heavy, 0.01) < 1.0);
    }

    #[test]
    fn monitor_oracle_sees_latency() {
        let p = problem(1, 1, 50.0);
        let o = MonitorOracle::plain();
        let host = &p.hosts[0];
        let d = Resources::new(100.0, 1024.0, 10.0, 10.0);
        let near = o.sla(&p.vms[0], host, &d, 0.01);
        let far = o.sla(&p.vms[0], host, &d, 0.40);
        assert!(near > far, "remote clients must hurt estimated SLA");
    }

    #[test]
    fn true_oracle_matches_ground_truth_shape() {
        let p = problem(1, 1, 50.0);
        let o = TrueOracle::new();
        let host = &p.hosts[0];
        let d = o.demand(&p.vms[0]);
        // Lightly loaded host: excellent SLA.
        let good = o.sla(&p.vms[0], host, &d, 0.01);
        assert!(good > 0.95, "sla {good}");
        // Crushed host: terrible SLA.
        let crushed = Resources::new(1600.0, 8192.0, 100.0, 400.0);
        let bad = o.sla(&p.vms[0], host, &crushed, 0.01);
        assert!(bad < good, "contention must reduce SLA: {bad} vs {good}");
    }

    #[test]
    fn true_oracle_demand_reflects_load() {
        let mut p = problem(1, 1, 50.0);
        let o = TrueOracle::new();
        let lo = o.demand(&p.vms[0]);
        p.vms[0].load.rps = 400.0;
        let hi = o.demand(&p.vms[0]);
        assert!(hi.cpu > 4.0 * lo.cpu);
    }
}
