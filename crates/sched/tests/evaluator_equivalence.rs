//! Property suite: the incremental [`ScheduleEvaluator`] must agree
//! with the full [`evaluate_schedule`] decomposition — at construction
//! and after arbitrary sequences of single-VM relocations — to within
//! 1e-9. This is the invariant that lets the consolidation pass score
//! moves in O(hosts touched) instead of re-evaluating the whole
//! schedule per candidate.

use pamdc_sched::evaluator::ScheduleEvaluator;
use pamdc_sched::oracle::{MonitorOracle, QosOracle, TrueOracle};
use pamdc_sched::problem::synthetic;
use pamdc_sched::problem::{Problem, Schedule};
use pamdc_sched::profit::evaluate_schedule;
use proptest::prelude::*;

/// Relative-tolerance comparison at the suite's 1e-9 bar.
fn assert_close(a: f64, b: f64, what: &str) {
    let tol = 1e-9 * (1.0 + a.abs().max(b.abs()));
    assert!((a - b).abs() <= tol, "{what}: incremental {a} vs full {b}");
}

/// Builds a random-ish schedule from index draws (every VM placed on an
/// existing host, as `Schedule::validate` requires).
fn schedule_from_picks(problem: &Problem, picks: &[usize]) -> Schedule {
    let hosts = problem.hosts.len();
    Schedule {
        assignment: (0..problem.vms.len())
            .map(|vi| problem.hosts[picks[vi % picks.len()] % hosts].id)
            .collect(),
    }
}

fn check_move_sequence(
    problem: &Problem,
    oracle: &dyn QosOracle,
    start: &Schedule,
    moves: &[(usize, usize)],
) {
    let full_start = evaluate_schedule(problem, oracle, start);
    let mut inc = ScheduleEvaluator::new(problem, oracle, start);
    assert_close(
        inc.profit_eur(),
        full_start.profit_eur,
        "profit at construction",
    );

    for &(vi_raw, hi_raw) in moves {
        let vi = vi_raw % problem.vms.len();
        let hi = hi_raw % problem.hosts.len();
        if inc.host_of(vi) == hi {
            continue;
        }
        // The scored gain must predict the committed state exactly.
        let predicted = inc.profit_eur() + inc.move_gain(vi, hi);
        inc.apply_move(vi, hi);
        assert_close(inc.profit_eur(), predicted, "gain vs applied profit");

        // And the cached decomposition must match a fresh full
        // evaluation of the same assignment.
        let full = evaluate_schedule(problem, oracle, &inc.schedule());
        let (rev, energy, mig, net) = inc.components();
        assert_close(inc.profit_eur(), full.profit_eur, "profit after move");
        assert_close(rev, full.revenue_eur, "revenue after move");
        assert_close(energy, full.energy_eur, "energy after move");
        assert_close(mig, full.migration_eur, "migration after move");
        assert_close(net, full.network_eur, "network after move");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random problems, random starting schedules, random move
    /// sequences, truthful oracle.
    #[test]
    fn incremental_matches_full_true_oracle(
        vms in 1usize..8,
        hosts in 1usize..10,
        rps in 10.0f64..500.0,
        picks in proptest::collection::vec(0usize..64, 1..8),
        moves in proptest::collection::vec((0usize..64, 0usize..64), 1..24),
    ) {
        let p = synthetic::problem(vms, hosts, rps);
        let start = schedule_from_picks(&p, &picks);
        check_move_sequence(&p, &TrueOracle::new(), &start, &moves);
    }

    /// Same invariant under the monitor oracle (different SLA branch
    /// structure: fit-based estimate instead of the RT model).
    #[test]
    fn incremental_matches_full_monitor_oracle(
        vms in 1usize..8,
        hosts in 1usize..10,
        rps in 10.0f64..500.0,
        picks in proptest::collection::vec(0usize..64, 1..8),
        moves in proptest::collection::vec((0usize..64, 0usize..64), 1..24),
    ) {
        let p = synthetic::problem(vms, hosts, rps);
        let start = schedule_from_picks(&p, &picks);
        check_move_sequence(&p, &MonitorOracle::plain(), &start, &moves);
    }

    /// Priced networks exercise the client-traffic and image-transfer
    /// terms that are zero on the paper's free network.
    #[test]
    fn incremental_matches_full_priced_network(
        vms in 1usize..6,
        hosts in 2usize..8,
        rps in 50.0f64..400.0,
        eur_per_gb in 0.01f64..0.2,
        moves in proptest::collection::vec((0usize..64, 0usize..64), 1..16),
    ) {
        let mut p = synthetic::problem(vms, hosts, rps);
        p.net = std::sync::Arc::new(
            pamdc_infra::network::NetworkModel::paper_priced(eur_per_gb),
        );
        let start = pamdc_sched::baselines::round_robin(&p);
        check_move_sequence(&p, &TrueOracle::new(), &start, &moves);
    }

    /// `improve_schedule` on the incremental evaluator must never lose
    /// profit versus the schedule it was given (the invariant the old
    /// full-evaluation search guaranteed by construction).
    #[test]
    fn improve_schedule_never_decreases_profit(
        vms in 1usize..8,
        hosts in 1usize..10,
        rps in 10.0f64..500.0,
    ) {
        use pamdc_sched::localsearch::{improve_schedule, LocalSearchConfig};
        let p = synthetic::problem(vms, hosts, rps);
        let o = TrueOracle::new();
        let start = pamdc_sched::bestfit::best_fit(&p, &o).schedule;
        let before = evaluate_schedule(&p, &o, &start).profit_eur;
        let (improved, _) = improve_schedule(&p, &o, start, &LocalSearchConfig::default());
        let after = evaluate_schedule(&p, &o, &improved).profit_eur;
        prop_assert!(after >= before - 1e-9, "{after} < {before}");
    }
}
