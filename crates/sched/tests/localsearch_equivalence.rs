//! Property suite: the incremental local search is **bit-identical** to
//! the reference full-rescan loop.
//!
//! The incremental path (per-VM best-candidate maintenance + indexed
//! shortlists) is a pure performance structure — it must reproduce the
//! reference steepest ascent move for move on any fleet: mixed machine
//! classes, memory-constrained profiles, scattered and homeless
//! residency, loose and tight headroom caps (including caps above 1.0,
//! which disable the bucket range prefilter), and long move sequences.
//! The near-equivalence index is exercised at `top_k = usize::MAX`,
//! where its shortlist provably covers every candidate and the answer
//! must still be exact.

use pamdc_infra::ids::PmId;
use pamdc_infra::pm::MachineSpec;
use pamdc_infra::resources::Resources;
use pamdc_perf::demand::{required_resources, VmPerfProfile};
use pamdc_sched::bestfit::{best_fit_full_scan, best_fit_indexed_near, SchedTuning};
use pamdc_sched::localsearch::{
    improve_schedule_incremental, improve_schedule_reference, LocalSearchConfig,
};
use pamdc_sched::oracle::{QosOracle, TrueOracle};
use pamdc_sched::problem::{synthetic, Problem, Schedule};
use pamdc_sched::profit::evaluate_schedule;
use proptest::prelude::*;

/// Randomized heterogeneous fleet on the synthetic fixture: every third
/// host a Xeon, some hosts pre-powered, residency scattered (every
/// fourth VM homeless), optional memory-heavy profiles making RAM the
/// binding dimension for half the VMs.
fn mixed_fleet(vms: usize, hosts: usize, rps: f64, mem_heavy: bool) -> Problem {
    let mut p = synthetic::problem(vms, hosts, rps);
    let xeon = MachineSpec::xeon();
    for (i, host) in p.hosts.iter_mut().enumerate() {
        if i % 3 == 1 {
            host.capacity = xeon.capacity;
            host.power = xeon.power.clone();
            host.virt_overhead_cpu_per_vm = xeon.virt_overhead_cpu_per_vm;
        }
        if i % 5 == 2 {
            host.powered_on = true;
            host.boot_penalty = pamdc_simcore::time::SimDuration::ZERO;
        }
    }
    for (i, vm) in p.vms.iter_mut().enumerate() {
        if mem_heavy && i % 2 == 0 {
            vm.perf = VmPerfProfile {
                base_mem_mb: 1500.0,
                mem_mb_per_inflight: 16.0,
                ..vm.perf
            };
            vm.observed_usage = required_resources(&vm.load, &vm.perf, 600.0);
        }
        if i % 4 == 3 {
            vm.current_pm = None;
            vm.current_location = None;
        } else {
            let hi = (i * 7 + 1) % hosts;
            vm.current_pm = Some(PmId::from_index(hi));
            vm.current_location = Some(p.hosts[hi].location);
        }
    }
    p
}

/// A deterministic spread start: VM i on host i mod H. Wider than the
/// current placement, so consolidation has real work.
fn spread_start(p: &Problem) -> Schedule {
    let hosts = p.hosts.len();
    Schedule {
        assignment: (0..p.vms.len())
            .map(|vi| PmId::from_index(vi % hosts))
            .collect(),
    }
}

fn assert_bit_identical(p: &Problem, cfg: &LocalSearchConfig, start: Schedule) {
    let o = TrueOracle::new();
    let (ref_sched, ref_moves) = improve_schedule_reference(p, &o, start.clone(), cfg);
    let (inc_sched, inc_moves) = improve_schedule_incremental(p, &o, start, cfg);
    assert_eq!(ref_moves, inc_moves, "move counts diverged");
    assert_eq!(ref_sched, inc_sched, "schedules diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Heterogeneous fleets, default-ish knobs.
    #[test]
    fn incremental_matches_reference_on_mixed_fleets(
        vms in 1usize..24,
        hosts in 1usize..72,
        rps in 10.0f64..400.0,
        mem_heavy_bit in 0usize..2,
        max_moves in 1usize..32,
    ) {
        let p = mixed_fleet(vms, hosts, rps, mem_heavy_bit == 1);
        let cfg = LocalSearchConfig { max_moves, ..Default::default() };
        let start = spread_start(&p);
        assert_bit_identical(&p, &cfg, start);
    }

    /// Memory-constrained fleets under a relaxed (>1.0) headroom cap:
    /// the bucket range prefilter is unsound there, so the incremental
    /// path must fall back to scanning every group — and the RAM guard
    /// becomes the binding constraint.
    #[test]
    fn incremental_matches_reference_when_memory_binds(
        vms in 2usize..20,
        hosts in 2usize..48,
        rps in 100.0f64..500.0,
        max_util in 0.8f64..4.0,
    ) {
        let p = mixed_fleet(vms, hosts, rps, true);
        let cfg = LocalSearchConfig {
            max_moves: 24,
            max_util_after_move: max_util,
            ..Default::default()
        };
        let start = spread_start(&p);
        assert_bit_identical(&p, &cfg, start);
    }

    /// Long move sequences: a high move cap forces the search to run to
    /// convergence, exercising many rounds of candidate maintenance; the
    /// final schedule must still match the reference and must never have
    /// lost profit along the way.
    #[test]
    fn long_move_sequences_stay_consistent(
        vms in 4usize..20,
        hosts in 4usize..48,
        rps in 10.0f64..150.0,
    ) {
        let p = mixed_fleet(vms, hosts, rps, false);
        let cfg = LocalSearchConfig { max_moves: 256, ..Default::default() };
        let o = TrueOracle::new();
        let start = spread_start(&p);
        let before = evaluate_schedule(&p, &o, &start).profit_eur;
        let (ref_sched, ref_moves) = improve_schedule_reference(&p, &o, start.clone(), &cfg);
        let (inc_sched, inc_moves) = improve_schedule_incremental(&p, &o, start, &cfg);
        prop_assert_eq!(ref_moves, inc_moves);
        prop_assert_eq!(&ref_sched, &inc_sched);
        prop_assert!(
            ref_moves < 256,
            "search must converge, not hit the cap"
        );
        let after = evaluate_schedule(&p, &o, &inc_sched).profit_eur;
        prop_assert!(after >= before - 1e-9, "{after} < {before}");
    }

    /// Near-equivalence anchor: with `top_k = usize::MAX` the coarse
    /// groups still enumerate every destination with per-member guards,
    /// so the "approximate" mode must degenerate to the exact answer.
    #[test]
    fn near_mode_with_unbounded_top_k_is_exact(
        vms in 1usize..16,
        hosts in 2usize..48,
        rps in 10.0f64..300.0,
        mem_heavy_bit in 0usize..2,
    ) {
        let p = mixed_fleet(vms, hosts, rps, mem_heavy_bit == 1);
        let cfg_near = LocalSearchConfig {
            max_moves: 24,
            tuning: SchedTuning { near_top_k: Some(usize::MAX), ..Default::default() },
            ..Default::default()
        };
        let cfg_exact = LocalSearchConfig { max_moves: 24, ..Default::default() };
        let o = TrueOracle::new();
        let start = spread_start(&p);
        let (ref_sched, ref_moves) =
            improve_schedule_reference(&p, &o, start.clone(), &cfg_exact);
        let (near_sched, near_moves) = improve_schedule_incremental(&p, &o, start, &cfg_near);
        prop_assert_eq!(ref_moves, near_moves);
        prop_assert_eq!(ref_sched, near_sched);
    }

    /// Near-equivalence in Best-Fit: unbounded `top_k` covers every
    /// candidate, so placements match the full scan bit-for-bit.
    #[test]
    fn bestfit_near_with_unbounded_top_k_matches_full_scan(
        vms in 1usize..20,
        hosts in 1usize..64,
        rps in 10.0f64..400.0,
        mem_heavy_bit in 0usize..2,
    ) {
        let p = mixed_fleet(vms, hosts, rps, mem_heavy_bit == 1);
        let o = TrueOracle::new();
        let demands: Vec<Resources> = p.vms.iter().map(|vm| o.demand(vm)).collect();
        let full = best_fit_full_scan(&p, &o, &demands);
        let near = best_fit_indexed_near(&p, &o, &demands, usize::MAX);
        prop_assert_eq!(full.schedule, near.schedule);
        prop_assert_eq!(full.overflow_count, near.overflow_count);
    }

    /// Bounded near mode is approximate but must stay *sound*: a valid
    /// schedule, and consolidation that never loses profit.
    #[test]
    fn bounded_near_mode_stays_sound(
        vms in 2usize..16,
        hosts in 2usize..48,
        rps in 10.0f64..300.0,
        top_k in 1usize..4,
    ) {
        let p = mixed_fleet(vms, hosts, rps, false);
        let cfg = LocalSearchConfig {
            max_moves: 16,
            tuning: SchedTuning { near_top_k: Some(top_k), ..Default::default() },
            ..Default::default()
        };
        let o = TrueOracle::new();
        let start = spread_start(&p);
        let before = evaluate_schedule(&p, &o, &start).profit_eur;
        let (sched, _) = improve_schedule_incremental(&p, &o, start, &cfg);
        sched.validate(&p);
        let after = evaluate_schedule(&p, &o, &sched).profit_eur;
        prop_assert!(after >= before - 1e-9, "{after} < {before}");
    }
}
