//! Property suite: the indexed-shortlist Best-Fit is **bit-identical**
//! to the full-scan reference.
//!
//! The candidate index is a pure performance structure — it must never
//! change a single placement, score bit or overflow count, on any fleet.
//! These properties drive both implementations directly (no size
//! threshold involved) across randomized fleets: mixed machine classes,
//! memory-constrained profiles, hysteresis margins, homeless VMs and
//! overloaded (overflow) rounds.

use pamdc_infra::ids::PmId;
use pamdc_infra::pm::MachineSpec;
use pamdc_infra::resources::Resources;
use pamdc_perf::demand::{required_resources, VmPerfProfile};
use pamdc_sched::bestfit::{best_fit_full_scan, best_fit_indexed, BestFitResult};
use pamdc_sched::oracle::{QosOracle, TrueOracle};
use pamdc_sched::problem::{synthetic, Problem};
use pamdc_sched::profit::PlacementState;
use proptest::prelude::*;

/// A randomized heterogeneous fleet built on the synthetic fixture:
/// every third host is a Xeon instead of an Atom, some hosts start
/// powered on, VM residency is scattered (including homeless VMs), an
/// optional memory-heavy profile makes RAM the binding dimension for
/// half the VMs, and the hysteresis margin varies.
fn mixed_fleet(
    vms: usize,
    hosts: usize,
    rps: f64,
    stickiness_eur: f64,
    mem_heavy: bool,
) -> Problem {
    let mut p = synthetic::problem(vms, hosts, rps);
    let xeon = MachineSpec::xeon();
    for (i, host) in p.hosts.iter_mut().enumerate() {
        if i % 3 == 1 {
            host.capacity = xeon.capacity;
            host.power = xeon.power.clone();
            host.virt_overhead_cpu_per_vm = xeon.virt_overhead_cpu_per_vm;
        }
        if i % 5 == 2 {
            host.powered_on = true;
            host.boot_penalty = pamdc_simcore::time::SimDuration::ZERO;
        }
    }
    for (i, vm) in p.vms.iter_mut().enumerate() {
        if mem_heavy && i % 2 == 0 {
            vm.perf = VmPerfProfile {
                base_mem_mb: 1500.0,
                mem_mb_per_inflight: 16.0,
                ..vm.perf
            };
            vm.observed_usage = required_resources(&vm.load, &vm.perf, 600.0);
        }
        // Scatter residency; every fourth VM arrives homeless.
        if i % 4 == 3 {
            vm.current_pm = None;
            vm.current_location = None;
        } else {
            let hi = (i * 7 + 1) % hosts;
            vm.current_pm = Some(PmId::from_index(hi));
            vm.current_location = Some(p.hosts[hi].location);
        }
    }
    p.stickiness_eur = stickiness_eur;
    p
}

fn run_both(p: &Problem) -> (BestFitResult, BestFitResult) {
    let o = TrueOracle::new();
    let demands: Vec<Resources> = p.vms.iter().map(|vm| o.demand(vm)).collect();
    let full = best_fit_full_scan(p, &o, &demands);
    let indexed = best_fit_indexed(p, &o, &demands);
    (full, indexed)
}

/// Bitwise agreement on everything the caller can observe.
fn assert_identical(p: &Problem, full: &BestFitResult, indexed: &BestFitResult) {
    assert_eq!(full.schedule, indexed.schedule, "placements diverged");
    assert_eq!(
        full.overflow_count, indexed.overflow_count,
        "overflow accounting diverged"
    );
    for (vi, (a, b)) in full.scores.iter().zip(&indexed.scores).enumerate() {
        // Exact f64 bit equality, not an epsilon: the index scores one
        // group representative and reuses it, which is only sound if the
        // value is *the same number* the full scan would have computed.
        assert_eq!(
            a.profit().to_bits(),
            b.profit().to_bits(),
            "vm {vi}: profit {} vs {}",
            a.profit(),
            b.profit()
        );
        assert_eq!(a, b, "vm {vi}: score components diverged");
    }
    let _ = p;
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Mixed-class fleets, scattered residency, varying hysteresis:
    /// feasible and mildly-loaded rounds.
    #[test]
    fn indexed_matches_full_scan_on_mixed_fleets(
        vms in 1usize..32,
        hosts in 1usize..96,
        rps in 10.0f64..400.0,
        stickiness in 0.0f64..0.01,
        mem_heavy_bit in 0usize..2,
    ) {
        let p = mixed_fleet(vms, hosts, rps, stickiness, mem_heavy_bit == 1);
        let (full, indexed) = run_both(&p);
        assert_identical(&p, &full, &indexed);
    }

    /// Overloaded rounds: far more demand than capacity, forcing the
    /// overflow tiers (memory-fitting hosts before RAM-overcommitted
    /// ones) through both code paths.
    #[test]
    fn indexed_matches_full_scan_under_overflow(
        vms in 8usize..24,
        hosts in 1usize..4,
        rps in 500.0f64..800.0,
        mem_heavy_bit in 0usize..2,
    ) {
        let p = mixed_fleet(vms, hosts, rps, 0.0, mem_heavy_bit == 1);
        let (full, indexed) = run_both(&p);
        prop_assert!(full.overflow_count > 0, "instance meant to overload");
        assert_identical(&p, &full, &indexed);
    }

    /// The shortlist actually shrinks the scored-candidate count on
    /// fleets with many identical hosts — the index must not silently
    /// degrade to scoring everyone.
    #[test]
    fn shortlist_is_actually_sublinear_on_uniform_fleets(
        vms in 4usize..16,
        hosts in 64usize..128,
        rps in 20.0f64..120.0,
    ) {
        let p = mixed_fleet(vms, hosts, rps, 0.0, false);
        let (full, indexed) = run_both(&p);
        assert_identical(&p, &full, &indexed);
        prop_assert!(
            indexed.scored_candidates * 2 < full.scored_candidates,
            "index scored {} of the full scan's {}",
            indexed.scored_candidates,
            full.scored_candidates
        );
    }

    /// The incremental index maintained across assignments stays equal
    /// to one rebuilt from scratch at the end of the round.
    #[test]
    fn incremental_index_matches_rebuild(
        vms in 1usize..24,
        hosts in 2usize..64,
        rps in 10.0f64..500.0,
        mem_heavy_bit in 0usize..2,
    ) {
        let p = mixed_fleet(vms, hosts, rps, 0.0, mem_heavy_bit == 1);
        let o = TrueOracle::new();
        let demands: Vec<Resources> = p.vms.iter().map(|vm| o.demand(vm)).collect();
        let result = best_fit_indexed(&p, &o, &demands);

        // Replay the final placement into a fresh state+index.
        let mut replay = PlacementState::with_candidate_index(&p);
        for (vi, pm) in result.schedule.assignment.iter().enumerate() {
            let hi = p.host_index(*pm).expect("valid schedule");
            replay.assign(&p, hi, demands[vi]);
        }
        let rebuilt = replay.candidate_index().expect("index enabled");

        // Every demand's candidate set from the replayed index matches a
        // brute-force fit scan over the replayed state.
        for d in demands.iter().take(8) {
            let mut from_index: Vec<usize> = rebuilt
                .fitting_groups(d)
                .flat_map(|g| g.iter().copied())
                .filter(|&hi| replay.fits(&p, hi, d))
                .collect();
            from_index.sort_unstable();
            let brute: Vec<usize> =
                (0..p.hosts.len()).filter(|&hi| replay.fits(&p, hi, d)).collect();
            prop_assert_eq!(from_index, brute);
        }
    }
}
