//! Property-based tests for the scheduling stack: every scheduler, on
//! randomized problem instances, must produce valid schedules and
//! respect the model's invariants.

use pamdc_sched::prelude::*;
use pamdc_sched::problem::synthetic;
use proptest::prelude::*;

fn arb_instance() -> impl Strategy<Value = (usize, usize, f64)> {
    (1usize..8, 1usize..10, 10.0f64..500.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Constraint 1 of the paper's program: every VM on exactly one,
    /// existing host — for every scheduler.
    #[test]
    fn all_schedulers_produce_valid_schedules((vms, hosts, rps) in arb_instance()) {
        let p = synthetic::problem(vms, hosts, rps);
        let oracle = TrueOracle::new();
        let schedules = vec![
            best_fit(&p, &oracle).schedule,
            static_schedule(&p, &oracle),
            follow_the_load(&p, &oracle),
            first_fit(&p, &oracle),
            round_robin(&p),
            cheapest_energy(&p, &oracle),
            hierarchical_round(&p, &oracle, &Default::default()).0,
        ];
        for s in schedules {
            s.validate(&p);
            prop_assert_eq!(s.assignment.len(), vms);
        }
    }

    /// Best-Fit with zero overflow never violates constraint 2 (believed
    /// demand within capacity).
    #[test]
    fn bestfit_respects_capacity_unless_overflowing((vms, hosts, rps) in arb_instance()) {
        let p = synthetic::problem(vms, hosts, rps);
        let oracle = TrueOracle::new();
        let result = best_fit(&p, &oracle);
        if result.overflow_count == 0 {
            let per_host = result.schedule.demand_per_host(&p, |vm| oracle.demand(vm));
            for (d, h) in per_host.iter().zip(&p.hosts) {
                prop_assert!(
                    d.fits_within(&h.capacity),
                    "believed demand {d:?} exceeds capacity on {}",
                    h.id
                );
            }
        }
    }

    /// The profit decomposition is consistent: evaluate_schedule's total
    /// equals revenue − energy − migration, and SLAs are in [0, 1].
    #[test]
    fn profit_decomposition_consistent((vms, hosts, rps) in arb_instance()) {
        let p = synthetic::problem(vms, hosts, rps);
        let oracle = TrueOracle::new();
        let s = best_fit(&p, &oracle).schedule;
        let eval = evaluate_schedule(&p, &oracle, &s);
        prop_assert!(
            (eval.profit_eur - (eval.revenue_eur - eval.energy_eur - eval.migration_eur)).abs()
                < 1e-9
        );
        for &sla in &eval.per_vm_sla {
            prop_assert!((0.0..=1.0).contains(&sla), "sla {sla}");
        }
        prop_assert!(eval.energy_eur >= 0.0 && eval.migration_eur >= 0.0);
        prop_assert!(eval.active_hosts <= hosts);
    }

    /// Local search never worsens the objective and always terminates
    /// within its move budget.
    #[test]
    fn local_search_monotone((vms, hosts, rps) in arb_instance()) {
        let p = synthetic::problem(vms, hosts, rps);
        let oracle = TrueOracle::new();
        let start = round_robin(&p);
        let before = evaluate_schedule(&p, &oracle, &start).profit_eur;
        let cfg = LocalSearchConfig::default();
        let (improved, moves) = improve_schedule(&p, &oracle, start, &cfg);
        let after = evaluate_schedule(&p, &oracle, &improved).profit_eur;
        prop_assert!(after >= before - 1e-9, "{after} < {before}");
        prop_assert!(moves <= cfg.max_moves);
        improved.validate(&p);
    }

    /// Exact branch-and-bound is never beaten by the heuristic (on small
    /// instances where it runs).
    #[test]
    fn exact_dominates_heuristic(vms in 1usize..5, hosts in 1usize..5, rps in 50.0f64..400.0) {
        let p = synthetic::problem(vms, hosts, rps);
        let oracle = TrueOracle::new();
        let exact = branch_and_bound(&p, &oracle);
        let heur = best_fit(&p, &oracle).schedule;
        let heur_profit = evaluate_schedule(&p, &oracle, &heur).profit_eur;
        prop_assert!(
            exact.eval.profit_eur >= heur_profit - 1e-9,
            "exact {} < heuristic {}",
            exact.eval.profit_eur,
            heur_profit
        );
    }

    /// Oracle demand estimates are always valid resource vectors, and
    /// SLA estimates stay in [0, 1].
    #[test]
    fn oracle_outputs_well_formed((vms, hosts, rps) in arb_instance()) {
        let p = synthetic::problem(vms, hosts, rps);
        let oracles: Vec<Box<dyn QosOracle>> = vec![
            Box::new(MonitorOracle::plain()),
            Box::new(MonitorOracle::overbooked()),
            Box::new(TrueOracle::new()),
        ];
        for oracle in &oracles {
            for vm in &p.vms {
                let d = oracle.demand(vm);
                prop_assert!(d.is_valid(), "{}: {d:?}", oracle.name());
                let host = &p.hosts[0];
                let sla = oracle.sla(vm, host, &d, 0.05);
                prop_assert!((0.0..=1.0).contains(&sla), "{}: sla {sla}", oracle.name());
            }
        }
    }

    /// Migration counting matches the assignment diff.
    #[test]
    fn migration_count_matches_diff((vms, hosts, rps) in arb_instance()) {
        let p = synthetic::problem(vms, hosts, rps);
        let s = round_robin(&p);
        let by_hand = s
            .assignment
            .iter()
            .zip(&p.vms)
            .filter(|(&to, vm)| vm.current_pm.is_some_and(|c| c != to))
            .count();
        prop_assert_eq!(s.migration_count(&p), by_hand);
    }
}
