//! Property suite: memory as a hard placement dimension.
//!
//! RAM is the one resource contention cannot stretch — CPU and network
//! overcommit degrade every tenant proportionally, memory overcommit
//! evicts. These properties pin the guarantees the schedulers make:
//!
//! * Best-Fit never exceeds a host's RAM when a feasible placement
//!   exists, and the consolidation pass preserves that even with its
//!   utilisation guard relaxed far past 100% (only the hard
//!   `move_fits_memory` test constrains it).
//! * The incremental [`ScheduleEvaluator`] stays equivalent to the full
//!   evaluation on memory-constrained schedules, at the same 1e-9 bar
//!   as the CPU-bound suite in `evaluator_equivalence.rs`.

use pamdc_perf::demand::{required_resources, VmPerfProfile};
use pamdc_sched::bestfit::best_fit;
use pamdc_sched::evaluator::ScheduleEvaluator;
use pamdc_sched::localsearch::{improve_schedule, LocalSearchConfig};
use pamdc_sched::oracle::{QosOracle, TrueOracle};
use pamdc_sched::problem::{synthetic, Problem, Schedule};
use pamdc_sched::profit::evaluate_schedule;
use proptest::prelude::*;

/// A synthetic problem re-profiled so memory, not CPU, is the binding
/// dimension: every VM gets a heavy memory floor and per-request
/// footprint, and its observed usage is recomputed to match the new
/// ground truth (the monitor would have seen the bigger footprint too).
fn mem_heavy_problem(
    vms: usize,
    hosts: usize,
    rps: f64,
    base_mem_mb: f64,
    mem_mb_per_inflight: f64,
) -> Problem {
    let mut p = synthetic::problem(vms, hosts, rps);
    for vm in &mut p.vms {
        vm.perf = VmPerfProfile {
            base_mem_mb,
            mem_mb_per_inflight,
            ..vm.perf
        };
        vm.observed_usage = required_resources(&vm.load, &vm.perf, 600.0);
    }
    p
}

/// Believed memory per host under a schedule (no hypervisor overhead —
/// that is CPU-only).
fn mem_per_host(p: &Problem, o: &dyn QosOracle, s: &Schedule) -> Vec<f64> {
    s.demand_per_host(p, |vm| o.demand(vm))
        .iter()
        .map(|d| d.mem_mb)
        .collect()
}

fn assert_close(a: f64, b: f64, what: &str) {
    let tol = 1e-9 * (1.0 + a.abs().max(b.abs()));
    assert!((a - b).abs() <= tol, "{what}: incremental {a} vs full {b}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// When a fully feasible placement exists (no overflow), neither
    /// Best-Fit nor the consolidation pass ever exceeds any host's RAM
    /// — even with the destination-utilisation guard relaxed to 10×,
    /// where only the hard memory test constrains moves.
    #[test]
    fn placement_never_exceeds_host_ram(
        vms in 1usize..8,
        hosts in 2usize..10,
        rps in 10.0f64..200.0,
        base_mem_mb in 256.0f64..1800.0,
        mem_mb_per_inflight in 1.0f64..24.0,
    ) {
        let p = mem_heavy_problem(vms, hosts, rps, base_mem_mb, mem_mb_per_inflight);
        let o = TrueOracle::new();
        let r = best_fit(&p, &o);
        if r.overflow_count != 0 {
            // No fully feasible placement exists for this instance; the
            // guarantee under test only applies when one does. (The
            // proptest shim has no prop_assume; skipping the case is
            // equivalent.)
            continue;
        }
        for (m, h) in mem_per_host(&p, &o, &r.schedule).iter().zip(&p.hosts) {
            prop_assert!(
                *m <= h.capacity.mem_mb + 1e-6,
                "best-fit put {m} MB on a {} MB host",
                h.capacity.mem_mb
            );
        }
        let relaxed = LocalSearchConfig {
            max_util_after_move: 10.0,
            ..LocalSearchConfig::default()
        };
        let (improved, _) = improve_schedule(&p, &o, r.schedule, &relaxed);
        for (m, h) in mem_per_host(&p, &o, &improved).iter().zip(&p.hosts) {
            prop_assert!(
                *m <= h.capacity.mem_mb + 1e-6,
                "consolidation pushed {m} MB onto a {} MB host",
                h.capacity.mem_mb
            );
        }
    }

    /// The incremental evaluator must agree with the full evaluation on
    /// memory-constrained schedules (including RAM-overcommitted hosts,
    /// which the SLA models penalize) — same 1e-9 bar as the CPU suite.
    #[test]
    fn evaluator_matches_full_on_memory_constrained_schedules(
        vms in 1usize..7,
        hosts in 1usize..8,
        rps in 10.0f64..300.0,
        base_mem_mb in 512.0f64..2600.0,
        mem_mb_per_inflight in 2.0f64..32.0,
        picks in proptest::collection::vec(0usize..64, 1..8),
        moves in proptest::collection::vec((0usize..64, 0usize..64), 1..20),
    ) {
        let p = mem_heavy_problem(vms, hosts, rps, base_mem_mb, mem_mb_per_inflight);
        let o = TrueOracle::new();
        let start = Schedule {
            assignment: (0..p.vms.len())
                .map(|vi| p.hosts[picks[vi % picks.len()] % p.hosts.len()].id)
                .collect(),
        };
        let full_start = evaluate_schedule(&p, &o, &start);
        let mut inc = ScheduleEvaluator::new(&p, &o, &start);
        assert_close(inc.profit_eur(), full_start.profit_eur, "profit at construction");
        for &(vi_raw, hi_raw) in &moves {
            let vi = vi_raw % p.vms.len();
            let hi = hi_raw % p.hosts.len();
            if inc.host_of(vi) == hi {
                continue;
            }
            let predicted = inc.profit_eur() + inc.move_gain(vi, hi);
            inc.apply_move(vi, hi);
            assert_close(inc.profit_eur(), predicted, "gain vs applied profit");
            let full = evaluate_schedule(&p, &o, &inc.schedule());
            let (rev, energy, mig, net) = inc.components();
            assert_close(inc.profit_eur(), full.profit_eur, "profit after move");
            assert_close(rev, full.revenue_eur, "revenue after move");
            assert_close(energy, full.energy_eur, "energy after move");
            assert_close(mig, full.migration_eur, "migration after move");
            assert_close(net, full.network_eur, "network after move");
        }
    }

    /// `move_fits_memory` agrees with first-principles accounting under
    /// arbitrary move sequences (the cached per-host memory never
    /// drifts from a fresh recomputation).
    #[test]
    fn move_fits_memory_matches_recomputation(
        vms in 1usize..7,
        hosts in 2usize..8,
        rps in 10.0f64..250.0,
        base_mem_mb in 256.0f64..2000.0,
        moves in proptest::collection::vec((0usize..64, 0usize..64), 1..16),
    ) {
        let p = mem_heavy_problem(vms, hosts, rps, base_mem_mb, 8.0);
        let o = TrueOracle::new();
        let start = pamdc_sched::baselines::round_robin(&p);
        let mut inc = ScheduleEvaluator::new(&p, &o, &start);
        for &(vi_raw, hi_raw) in &moves {
            let vi = vi_raw % p.vms.len();
            let hi = hi_raw % p.hosts.len();
            if inc.host_of(vi) == hi {
                continue;
            }
            let fresh = mem_per_host(&p, &o, &inc.schedule());
            let expect = fresh[hi] + o.demand(&p.vms[vi]).mem_mb
                <= p.hosts[hi].capacity.mem_mb + 1e-9;
            prop_assert_eq!(inc.move_fits_memory(vi, hi), expect, "vm {} -> host {}", vi, hi);
            inc.apply_move(vi, hi);
        }
    }
}

/// Deterministic twin check at the solver level: the exact situation the
/// `mem-pressure` builtin demonstrates end-to-end. Two light-CPU VMs on
/// two same-DC hosts: the CPU-bound twin consolidates onto one host,
/// the memory-bound twin (same CPU, RAM too big to share a 4 GB Atom)
/// must stay spread — even with the utilisation guard relaxed, because
/// the hard memory test rules the merge out.
#[test]
fn memory_bound_twin_stays_spread_where_cpu_bound_twin_consolidates() {
    use pamdc_infra::ids::PmId;

    let relaxed = LocalSearchConfig {
        max_util_after_move: 10.0,
        ..LocalSearchConfig::default()
    };
    let build = |base_mem_mb: f64| {
        // 8 hosts: hosts 0 and 4 are same-DC twins; park the VMs there.
        let mut p = mem_heavy_problem(2, 8, 15.0, base_mem_mb, 2.0);
        let home = p.hosts[0].location;
        for vm in &mut p.vms {
            for f in &mut vm.flows {
                f.source = home;
            }
        }
        p.vms[1].current_pm = Some(PmId(4));
        p.hosts[4].powered_on = true;
        p.hosts[4].boot_penalty = pamdc_simcore::time::SimDuration::ZERO;
        p
    };
    let spread = Schedule {
        assignment: vec![PmId(0), PmId(4)],
    };
    let o = TrueOracle::new();

    let cpu_bound = build(256.0);
    let (merged, moves) = improve_schedule(&cpu_bound, &o, spread.clone(), &relaxed);
    assert!(moves >= 1, "light identical VMs consolidate");
    assert_eq!(merged.assignment[0], merged.assignment[1]);

    // 2500 MB each: two do not share a 4096 MB Atom.
    let mem_bound = build(2500.0);
    let (kept, moves) = improve_schedule(&mem_bound, &o, spread.clone(), &relaxed);
    assert_eq!(moves, 0, "RAM-infeasible merge must be rejected");
    assert_eq!(kept, spread);
}

/// Overflow placements prefer memory-feasible hosts: when no host fits
/// fully, a CPU-crushed host with free RAM beats a RAM-full host even
/// when the latter scores better on profit.
#[test]
fn overflow_prefers_memory_feasible_hosts() {
    use pamdc_infra::resources::Resources;

    let mut p = synthetic::problem(1, 2, 120.0);
    let o = TrueOracle::new();
    // Make both hosts warm so boot penalties don't skew the choice, and
    // co-locate them with the VM's clients.
    let home = p.vms[0].flows[0].source;
    for h in &mut p.hosts {
        h.powered_on = true;
        h.boot_penalty = pamdc_simcore::time::SimDuration::ZERO;
        h.location = home;
    }
    // Host 0: CPU exhausted, RAM free. Host 1: RAM exhausted, CPU free.
    p.hosts[0].fixed_demand = Resources::new(400.0, 0.0, 0.0, 0.0);
    p.hosts[0].fixed_vm_count = 1;
    p.hosts[1].fixed_demand = Resources::new(0.0, 4090.0, 0.0, 0.0);
    p.hosts[1].fixed_vm_count = 1;
    // The VM currently lives on host 1, so staying there is the cheap
    // (no-migration) profit-maximal choice — the memory tier must
    // override it.
    p.vms[0].current_pm = Some(p.hosts[1].id);
    p.vms[0].current_location = Some(p.hosts[1].location);

    let r = best_fit(&p, &o);
    assert_eq!(r.overflow_count, 1, "nothing fits fully");
    assert_eq!(
        r.schedule.assignment[0], p.hosts[0].id,
        "the RAM-feasible host wins the overflow placement"
    );
}
