//! Placement policies — the "Plan" stage of the MAPE loop.
//!
//! A [`PlacementPolicy`] turns one scheduling-round [`Problem`] into a
//! [`Schedule`]. Every policy the paper evaluates (and every baseline it
//! compares against) is expressed through this one trait, so experiment
//! drivers swap policies without touching the simulation loop.

use pamdc_sched::baselines;
use pamdc_sched::bestfit::{best_fit_with_demands_tuned, SchedTuning};
use pamdc_sched::hierarchical::{hierarchical_round, HierarchicalConfig};
use pamdc_sched::localsearch::{improve_schedule, LocalSearchConfig};
use pamdc_sched::oracle::QosOracle;
use pamdc_sched::problem::{Problem, Schedule};
use pamdc_simcore::rng::RngStream;
use std::sync::Mutex;

/// Report-name suffix for the opt-in approximate index: policies running
/// with near-equivalence shortlists relax the bit-identity guarantee, so
/// every report naming them says so loudly.
fn near_label(tuning: &SchedTuning) -> String {
    match tuning.near_top_k {
        Some(k) => format!("+NEAR-EQUIV(top{k})"),
        None => String::new(),
    }
}

/// The Plan stage: problem in, schedule out.
pub trait PlacementPolicy: Send + Sync {
    /// Decides this round's schedule.
    fn decide(&self, problem: &Problem) -> Schedule;

    /// Decides under *mild* deadline pressure — the middle rung of the
    /// serve degradation ladder. Policies with an expensive
    /// consolidation pass keep it but shrink its move budget (a quarter
    /// of the configured moves, floor 1); everything else plans exactly
    /// as [`decide`](PlacementPolicy::decide).
    fn decide_trimmed(&self, problem: &Problem) -> Schedule {
        self.decide(problem)
    }

    /// Decides under deadline pressure: a cheaper plan the online
    /// controller can fall back to when the wall-clock budget nears.
    /// Placement is never skipped — policies with an expensive
    /// consolidation pass drop only that pass; everything else plans
    /// exactly as [`decide`](PlacementPolicy::decide).
    fn decide_degraded(&self, problem: &Problem) -> Schedule {
        self.decide(problem)
    }

    /// Display name for reports.
    fn name(&self) -> String;
}

/// Keep every VM where it is (the paper's "Static-Global").
pub struct StaticPolicy<O: QosOracle>(pub O);

impl<O: QosOracle> PlacementPolicy for StaticPolicy<O> {
    fn decide(&self, problem: &Problem) -> Schedule {
        baselines::static_schedule(problem, &self.0)
    }
    fn name(&self) -> String {
        "static".into()
    }
}

/// Latency-only packing (the Figure 5 sanity check).
pub struct FollowLoadPolicy<O: QosOracle>(pub O);

impl<O: QosOracle> PlacementPolicy for FollowLoadPolicy<O> {
    fn decide(&self, problem: &Problem) -> Schedule {
        baselines::follow_the_load(problem, &self.0)
    }
    fn name(&self) -> String {
        "follow-load".into()
    }
}

/// Flat (single-layer) Descending Best-Fit with any oracle, followed by
/// the profit-improving consolidation pass (which is what lets the
/// scheduler power hosts down — and what makes plain BF dangerous: its
/// monitored beliefs under-report demand under contention, so it
/// consolidates into trouble it cannot see).
pub struct BestFitPolicy<O: QosOracle> {
    /// The belief source (BF / BF-OB / BF-ML / BF-True).
    pub oracle: O,
    /// Consolidation pass configuration (None = raw Algorithm 1 only).
    pub refine: Option<LocalSearchConfig>,
    /// Solver tuning (dispatch threshold, opt-in near-equivalence).
    pub tuning: SchedTuning,
}

impl<O: QosOracle> BestFitPolicy<O> {
    /// Best-Fit with the default consolidation pass.
    pub fn new(oracle: O) -> Self {
        BestFitPolicy {
            oracle,
            refine: Some(LocalSearchConfig::default()),
            tuning: SchedTuning::default(),
        }
    }

    /// Raw Algorithm 1, no consolidation pass.
    pub fn raw(oracle: O) -> Self {
        BestFitPolicy {
            oracle,
            refine: None,
            tuning: SchedTuning::default(),
        }
    }
}

impl<O: QosOracle> PlacementPolicy for BestFitPolicy<O> {
    fn decide(&self, problem: &Problem) -> Schedule {
        let demands: Vec<_> = problem
            .vms
            .iter()
            .map(|vm| self.oracle.demand(vm))
            .collect();
        let schedule =
            best_fit_with_demands_tuned(problem, &self.oracle, &demands, &self.tuning).schedule;
        match &self.refine {
            Some(cfg) => improve_schedule(problem, &self.oracle, schedule, cfg).0,
            None => schedule,
        }
    }
    fn decide_trimmed(&self, problem: &Problem) -> Schedule {
        // Middle rung: consolidate, but on a quarter of the move
        // budget — most of the gain comes from the first few moves.
        let demands: Vec<_> = problem
            .vms
            .iter()
            .map(|vm| self.oracle.demand(vm))
            .collect();
        let schedule =
            best_fit_with_demands_tuned(problem, &self.oracle, &demands, &self.tuning).schedule;
        match &self.refine {
            Some(cfg) => {
                let trimmed = trim_local_search(cfg);
                improve_schedule(problem, &self.oracle, schedule, &trimmed).0
            }
            None => schedule,
        }
    }
    fn decide_degraded(&self, problem: &Problem) -> Schedule {
        // Raw Algorithm 1: keep the placement, drop the consolidation
        // pass (the part whose cost scales with occupied hosts).
        let demands: Vec<_> = problem
            .vms
            .iter()
            .map(|vm| self.oracle.demand(vm))
            .collect();
        best_fit_with_demands_tuned(problem, &self.oracle, &demands, &self.tuning).schedule
    }
    fn name(&self) -> String {
        format!(
            "bestfit[{}]{}",
            self.oracle.name(),
            near_label(&self.tuning)
        )
    }
}

/// The middle-rung consolidation budget: a quarter of the configured
/// moves (floor 1). Shared by every policy with a local-search pass so
/// the ladder trims uniformly.
fn trim_local_search(cfg: &LocalSearchConfig) -> LocalSearchConfig {
    LocalSearchConfig {
        max_moves: (cfg.max_moves / 4).max(1),
        ..cfg.clone()
    }
}

/// The paper's two-layer hierarchical scheduler.
pub struct HierarchicalPolicy<O: QosOracle> {
    /// The belief source.
    pub oracle: O,
    /// Filtering thresholds.
    pub config: HierarchicalConfig,
}

impl<O: QosOracle> HierarchicalPolicy<O> {
    /// Default-config hierarchical policy.
    pub fn new(oracle: O) -> Self {
        HierarchicalPolicy {
            oracle,
            config: HierarchicalConfig::default(),
        }
    }
}

impl<O: QosOracle> PlacementPolicy for HierarchicalPolicy<O> {
    fn decide(&self, problem: &Problem) -> Schedule {
        hierarchical_round(problem, &self.oracle, &self.config).0
    }
    fn decide_trimmed(&self, problem: &Problem) -> Schedule {
        // Both layers still place; consolidation survives on a
        // quarter of its move budget.
        let cfg = HierarchicalConfig {
            local_search: self.config.local_search.as_ref().map(trim_local_search),
            ..self.config.clone()
        };
        hierarchical_round(problem, &self.oracle, &cfg).0
    }
    fn decide_degraded(&self, problem: &Problem) -> Schedule {
        // Both layers still place; only the consolidation pass drops.
        let cfg = HierarchicalConfig {
            local_search: None,
            ..self.config.clone()
        };
        hierarchical_round(problem, &self.oracle, &cfg).0
    }
    fn name(&self) -> String {
        format!(
            "hierarchical[{}]{}",
            self.oracle.name(),
            near_label(&self.config.tuning)
        )
    }
}

/// Consolidate toward the cheapest tariff (energy-only sanity check).
pub struct CheapestEnergyPolicy<O: QosOracle>(pub O);

impl<O: QosOracle> PlacementPolicy for CheapestEnergyPolicy<O> {
    fn decide(&self, problem: &Problem) -> Schedule {
        baselines::cheapest_energy(problem, &self.0)
    }
    fn name(&self) -> String {
        "cheapest-energy".into()
    }
}

/// Uniform-random placement each round — the exploration policy the
/// training pipeline uses to visit diverse co-locations and contention
/// levels.
pub struct RandomPolicy {
    rng: Mutex<RngStream>,
}

impl RandomPolicy {
    /// Seeded exploration policy.
    pub fn new(seed: u64) -> Self {
        RandomPolicy {
            rng: Mutex::new(RngStream::root(seed).derive("random-policy")),
        }
    }
}

impl PlacementPolicy for RandomPolicy {
    fn decide(&self, problem: &Problem) -> Schedule {
        let mut rng = self.rng.lock().expect("random-policy rng lock");
        let assignment = problem
            .vms
            .iter()
            .map(|_| problem.hosts[rng.index(problem.hosts.len())].id)
            .collect();
        Schedule { assignment }
    }
    fn name(&self) -> String {
        "random-exploration".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pamdc_sched::oracle::TrueOracle;
    use pamdc_sched::problem::synthetic;

    #[test]
    fn every_policy_produces_valid_schedules() {
        let p = synthetic::problem(4, 4, 100.0);
        let policies: Vec<Box<dyn PlacementPolicy>> = vec![
            Box::new(StaticPolicy(TrueOracle::new())),
            Box::new(FollowLoadPolicy(TrueOracle::new())),
            Box::new(BestFitPolicy::new(TrueOracle::new())),
            Box::new(HierarchicalPolicy::new(TrueOracle::new())),
            Box::new(CheapestEnergyPolicy(TrueOracle::new())),
            Box::new(RandomPolicy::new(1)),
        ];
        for policy in policies {
            let s = policy.decide(&p);
            s.validate(&p);
            assert!(!policy.name().is_empty());
        }
    }

    #[test]
    fn random_policy_is_seed_deterministic() {
        let p = synthetic::problem(4, 4, 100.0);
        let a = RandomPolicy::new(42).decide(&p);
        let b = RandomPolicy::new(42).decide(&p);
        assert_eq!(a, b);
    }
}
