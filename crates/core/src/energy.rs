//! The per-run energy environment: one [`SiteEnergy`] per datacenter.
//!
//! The default environment reproduces the paper exactly — each DC pays
//! its flat Table II tariff, no on-site renewables — so every headline
//! experiment is bit-identical with or without this layer. The green
//! extensions (follow-the-sun, price shocks, spot markets) swap in
//! richer [`SiteEnergy`] values per DC without touching the scheduler:
//! they only change the €/kWh the profit function sees, exactly as §II
//! of the paper predicts ("a follow the sun/wind policy could also be
//! introduced easily into the energy cost computation").

use pamdc_green::carbon::grid_carbon_g_per_kwh;
use pamdc_green::site::SiteEnergy;
use pamdc_green::solar::SolarFarm;
use pamdc_green::tariff::Tariff;
use pamdc_infra::cluster::Cluster;
use pamdc_infra::network::City;
use pamdc_simcore::time::SimTime;

/// Per-DC energy supply for one scenario.
#[derive(Clone, Debug)]
pub struct EnergyEnvironment {
    /// One site per datacenter, indexed by `DcId`.
    pub sites: Vec<SiteEnergy>,
    /// When true (default), the scheduling problem carries each host's
    /// *current marginal* €/kWh — time-varying tariffs and green
    /// headroom included — so the profit function chases cheap energy.
    /// When false it carries only the nominal posted price, modelling a
    /// price-blind scheduler (the control arm of the green experiments).
    pub scheduler_sees_dynamic_prices: bool,
}

impl EnergyEnvironment {
    /// The paper's environment for an already-built cluster: every DC on
    /// its flat tariff (taken from the cluster's posted prices) with the
    /// location's grid carbon intensity.
    pub fn paper_default(cluster: &Cluster) -> Self {
        let sites = cluster
            .dcs()
            .iter()
            .map(|dc| {
                let carbon = City::ALL
                    .iter()
                    .find(|c| c.location() == dc.location)
                    .map(|&c| grid_carbon_g_per_kwh(c))
                    .unwrap_or(450.0);
                SiteEnergy::flat(dc.energy_price_eur_kwh, carbon)
            })
            .collect();
        EnergyEnvironment {
            sites,
            scheduler_sees_dynamic_prices: true,
        }
    }

    /// Installs solar at every DC, sized as `capacity_per_pm_w` ×
    /// the DC's host count, phased to the DC's local noon. `min_sky`
    /// sets the worst-day cloud attenuation.
    pub fn with_solar_everywhere(
        mut self,
        cluster: &Cluster,
        capacity_per_pm_w: f64,
        min_sky: f64,
        days: u64,
        seed: u64,
    ) -> Self {
        for (i, dc) in cluster.dcs().iter().enumerate() {
            let offset = City::ALL
                .iter()
                .find(|c| c.location() == dc.location)
                .map(|c| c.utc_offset_hours())
                .unwrap_or(0.0);
            let capacity = capacity_per_pm_w * dc.pms().len() as f64;
            let farm = SolarFarm::new(capacity, offset, days, min_sky, seed ^ ((i as u64) << 8));
            self.sites[i] = self.sites[i].clone().with_solar(farm);
        }
        self
    }

    /// Installs solar at one DC, phased to its local noon.
    pub fn with_solar_at(
        mut self,
        cluster: &Cluster,
        dc_idx: usize,
        capacity_w: f64,
        min_sky: f64,
        days: u64,
        seed: u64,
    ) -> Self {
        let dc = &cluster.dcs()[dc_idx];
        let offset = City::ALL
            .iter()
            .find(|c| c.location() == dc.location)
            .map(|c| c.utc_offset_hours())
            .unwrap_or(0.0);
        let farm = SolarFarm::new(
            capacity_w,
            offset,
            days,
            min_sky,
            seed ^ ((dc_idx as u64) << 8),
        );
        self.sites[dc_idx] = self.sites[dc_idx].clone().with_solar(farm);
        self
    }

    /// Replaces one DC's grid tariff.
    pub fn with_tariff(mut self, dc_idx: usize, tariff: Tariff) -> Self {
        self.sites[dc_idx] = self.sites[dc_idx].clone().with_tariff(tariff);
        self
    }

    /// Replaces one DC's whole site.
    pub fn with_site(mut self, dc_idx: usize, site: SiteEnergy) -> Self {
        self.sites[dc_idx] = site;
        self
    }

    /// Hides dynamic prices from the scheduler (control arm).
    pub fn price_blind(mut self) -> Self {
        self.scheduler_sees_dynamic_prices = false;
        self
    }

    /// The €/kWh a scheduling round should quote for a host in `dc_idx`
    /// whose DC currently draws `dc_draw_w` and whose own expected draw
    /// is `host_w`: the marginal price when dynamic prices are visible,
    /// the nominal posted price otherwise.
    pub fn quoted_price_eur_kwh(
        &self,
        dc_idx: usize,
        at: SimTime,
        dc_draw_w: f64,
        host_w: f64,
    ) -> f64 {
        let site = &self.sites[dc_idx];
        if self.scheduler_sees_dynamic_prices {
            site.marginal_price_eur_kwh(at, dc_draw_w, host_w)
        } else {
            site.grid.nominal_eur_kwh()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pamdc_infra::network::NetworkModel;
    use pamdc_infra::pm::MachineSpec;

    fn four_city_cluster() -> Cluster {
        let mut c = Cluster::new(NetworkModel::paper());
        for city in City::ALL {
            let dc = c.add_datacenter(
                city.code(),
                city.location(),
                pamdc_econ::prices::paper_energy_price(city),
            );
            c.add_pm(dc, MachineSpec::atom());
        }
        c
    }

    #[test]
    fn paper_default_matches_table2() {
        let cluster = four_city_cluster();
        let env = EnergyEnvironment::paper_default(&cluster);
        assert_eq!(env.sites.len(), 4);
        for (i, city) in City::ALL.iter().enumerate() {
            let p = env.sites[i].grid.price_eur_kwh(SimTime::from_hours(7));
            assert_eq!(p, pamdc_econ::prices::paper_energy_price(*city));
            assert_eq!(env.sites[i].green_watts(SimTime::from_hours(12)), 0.0);
        }
        assert!(env.scheduler_sees_dynamic_prices);
    }

    #[test]
    fn quoted_price_flat_env_is_posted_price() {
        let cluster = four_city_cluster();
        let env = EnergyEnvironment::paper_default(&cluster);
        // Flat tariff, no green: marginal == nominal at any draw.
        let q = env.quoted_price_eur_kwh(2, SimTime::from_hours(9), 120.0, 45.0);
        assert!((q - 0.1513).abs() < 1e-9);
    }

    #[test]
    fn solar_everywhere_discounts_local_noon() {
        let cluster = four_city_cluster();
        let env = EnergyEnvironment::paper_default(&cluster)
            .with_solar_everywhere(&cluster, 200.0, 1.0, 7, 5);
        // 02:00 UTC = Brisbane noon: its quoted price collapses to the
        // green marginal while Barcelona (03:00 local) stays brown.
        let t = SimTime::from_hours(2);
        let brs = env.quoted_price_eur_kwh(0, t, 0.0, 50.0);
        let bcn = env.quoted_price_eur_kwh(2, t, 0.0, 50.0);
        assert!(brs < 0.02, "Brisbane noon is green: {brs}");
        assert!(
            (bcn - 0.1513).abs() < 1e-9,
            "Barcelona night is brown: {bcn}"
        );
    }

    #[test]
    fn price_blind_hides_the_discount() {
        let cluster = four_city_cluster();
        let env = EnergyEnvironment::paper_default(&cluster)
            .with_solar_everywhere(&cluster, 200.0, 1.0, 7, 5)
            .price_blind();
        let t = SimTime::from_hours(2);
        let brs = env.quoted_price_eur_kwh(0, t, 0.0, 50.0);
        assert!(
            (brs - 0.1314).abs() < 1e-9,
            "blind scheduler sees posted price: {brs}"
        );
    }

    #[test]
    fn with_tariff_overrides_one_site() {
        let cluster = four_city_cluster();
        let env = EnergyEnvironment::paper_default(&cluster).with_tariff(
            3,
            Tariff::Step {
                initial_eur: 0.1120,
                steps: vec![(SimTime::from_hours(12), 0.448)],
            },
        );
        let before = env.quoted_price_eur_kwh(3, SimTime::from_hours(11), 0.0, 50.0);
        let after = env.quoted_price_eur_kwh(3, SimTime::from_hours(13), 0.0, 50.0);
        assert!((before - 0.1120).abs() < 1e-9);
        assert!((after - 0.448).abs() < 1e-9);
        // Other sites untouched.
        let bcn = env.quoted_price_eur_kwh(2, SimTime::from_hours(13), 0.0, 50.0);
        assert!((bcn - 0.1513).abs() < 1e-9);
    }
}
