//! E-F5 — the paper's **Figure 5**: a VM following its load around the
//! planet.
//!
//! Sanity check: with the profit function reduced to client proximity
//! (no energy, no SLA beyond latency), a single VM with equal region
//! weights and noon-peaked regional profiles should migrate through the
//! DCs tracking the globally dominant load source — BRS → BNG → BCN →
//! BST over a simulated day.

use crate::experiment::{self, Arm, Experiment, ExperimentReport, ExperimentRun};
use crate::policy::FollowLoadPolicy;
use crate::report::TextTable;
use crate::scenario::ScenarioBuilder;
use crate::simulation::RunOutcome;
use pamdc_sched::oracle::TrueOracle;
use pamdc_simcore::time::SimTime;

/// Configuration of the Figure-5 reproduction.
#[derive(Clone, Debug)]
pub struct Fig5Config {
    /// Simulated hours (≥ 24 to see a full rotation).
    pub hours: u64,
    /// Seed.
    pub seed: u64,
}

impl Default for Fig5Config {
    fn default() -> Self {
        Fig5Config { hours: 48, seed: 5 }
    }
}

/// The run outcome plus the extracted placement trace.
pub struct Fig5Result {
    /// Full run metrics/series.
    pub outcome: RunOutcome,
    /// `(time, dc_index)` change points of the VM's home DC.
    pub placement_changes: Vec<(SimTime, usize)>,
    /// Distinct DCs visited.
    pub dcs_visited: usize,
}

/// Stage 2: the single follow-the-load arm.
fn arms(cfg: &Fig5Config) -> Vec<Arm> {
    let scenario = ScenarioBuilder::follow_the_sun().seed(cfg.seed).build();
    let policy = Box::new(FollowLoadPolicy(TrueOracle::new()));
    vec![Arm::new("", scenario, policy, cfg.hours)]
}

/// Runs the experiment.
pub fn run(cfg: &Fig5Config) -> Fig5Result {
    let outcome = experiment::execute(arms(cfg)).remove(0).1;
    result_from(outcome)
}

/// Stage 4: extracts the placement trace from the run.
fn result_from(outcome: RunOutcome) -> Fig5Result {
    let mut placement_changes = Vec::new();
    if let Some(trace) = outcome.series.get("vm0_dc") {
        let mut last: Option<usize> = None;
        for (t, v) in trace.iter() {
            let dc = v as usize;
            if last != Some(dc) {
                placement_changes.push((t, dc));
                last = Some(dc);
            }
        }
    }
    let mut visited: Vec<usize> = placement_changes.iter().map(|&(_, d)| d).collect();
    visited.sort_unstable();
    visited.dedup();
    Fig5Result {
        outcome,
        dcs_visited: visited.len(),
        placement_changes,
    }
}

/// The registry-facing experiment.
pub struct Fig5 {
    /// Run configuration.
    pub cfg: Fig5Config,
}

impl Experiment for Fig5 {
    fn arms(&mut self, _training: Option<&crate::training::TrainingOutcome>) -> Vec<Arm> {
        arms(&self.cfg)
    }

    fn emit(&self, run: ExperimentRun) -> ExperimentReport {
        let result = result_from(run.into_outcomes().remove(0));
        ExperimentReport {
            metrics: vec![
                ("dcs_visited".to_string(), result.dcs_visited as f64),
                ("migrations".to_string(), result.outcome.migrations as f64),
                ("mean_sla".to_string(), result.outcome.mean_sla),
            ],
            text: render(&result),
        }
    }
}

/// Renders the movement log.
pub fn render(result: &Fig5Result) -> String {
    let mut t = TextTable::new(&["sim time", "moved to DC"]);
    let dc_names = ["BRS", "BNG", "BCN", "BST"];
    for &(time, dc) in &result.placement_changes {
        t.row(vec![
            format!("{time}"),
            dc_names.get(dc).unwrap_or(&"?").to_string(),
        ]);
    }
    format!(
        "Figure 5 — VM placement following the load ({} DCs visited, {} migrations)\n{}",
        result.dcs_visited,
        result.outcome.migrations,
        t.render()
    )
}
