//! E-T2 — the paper's **Table II**: prices and latencies used in the
//! experiments.
//!
//! These are model inputs rather than results; the driver echoes them
//! (for EXPERIMENTS.md) and sanity-checks the invariants every other
//! experiment relies on: matrix symmetry, zero diagonal, and the
//! cheapest/dearest tariff ordering that drives consolidation targets.

use crate::experiment::{Experiment, ExperimentReport, ExperimentRun};
use crate::report::TextTable;
use pamdc_econ::prices::paper_prices;
use pamdc_infra::network::{City, LatencyMatrix};

/// The registry-facing experiment: echo and verify the model inputs.
pub struct Table2;

impl Experiment for Table2 {
    fn emit(&self, _run: ExperimentRun) -> ExperimentReport {
        verify();
        ExperimentReport {
            text: render(),
            metrics: Vec::new(),
        }
    }
}

/// Renders the paper's Table II from the embedded constants.
pub fn render() -> String {
    let m = LatencyMatrix::paper_table2();
    let prices = paper_prices();
    let mut t = TextTable::new(&["DC", "Euro/kWh", "LatBRS", "LatBNG", "LatBCN", "LatBST"]);
    for p in prices {
        let mut row = vec![
            format!("{} ({})", city_name(p.city), p.city.code()),
            format!("{:.4}", p.eur_per_kwh),
        ];
        for other in City::ALL {
            row.push(format!("{:.0}", m.get(p.city.location(), other.location())));
        }
        t.row(row);
    }
    format!(
        "Table II — prices and latencies (ms, 10 Gbps links)\n{}",
        t.render()
    )
}

fn city_name(c: City) -> &'static str {
    match c {
        City::Brisbane => "Brisbane",
        City::Bangalore => "Bangalore",
        City::Barcelona => "Barcelona",
        City::Boston => "Boston",
    }
}

/// Checks the invariants the rest of the evaluation depends on; panics
/// with a message when violated.
pub fn verify() {
    let m = LatencyMatrix::paper_table2();
    for a in City::ALL {
        assert_eq!(
            m.get(a.location(), a.location()),
            0.0,
            "diagonal must be zero"
        );
        for b in City::ALL {
            assert_eq!(
                m.get(a.location(), b.location()),
                m.get(b.location(), a.location()),
                "latency must be symmetric"
            );
        }
    }
    let prices = paper_prices();
    let boston = prices.iter().find(|p| p.city == City::Boston).unwrap();
    assert!(
        prices.iter().all(|p| p.eur_per_kwh >= boston.eur_per_kwh),
        "Boston must be the cheapest tariff (consolidation target)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_cities_and_verifies() {
        verify();
        let s = render();
        for c in City::ALL {
            assert!(s.contains(c.code()), "{s}");
        }
        assert!(s.contains("0.1120"));
        assert!(s.contains("390"));
    }
}
