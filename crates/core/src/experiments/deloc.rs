//! E-DL — §V-C "Benefit of De-locating Load".
//!
//! One home DC holds every VM and receives all the load; we compare
//! keeping the VMs pinned there (the paper's overloaded single-DC
//! scenario) against allowing temporary de-location to remote DCs when
//! the home hosts saturate. The paper measures mean SLA rising from
//! 0.8115 to 0.8871 and a net benefit of ≈ 0.348 €/VM/day; the shape to
//! reproduce is "de-location buys several SLA points despite paying
//! migration and latency".

use crate::experiment::{self, Arm, Experiment, ExperimentReport, ExperimentRun};
use crate::policy::{HierarchicalPolicy, PlacementPolicy, StaticPolicy};
use crate::report::TextTable;
use crate::scenario::ScenarioBuilder;
use crate::simulation::RunOutcome;
use pamdc_sched::oracle::TrueOracle;

/// Configuration of the de-location experiment.
#[derive(Clone, Debug)]
pub struct DelocConfig {
    /// Simulated hours.
    pub hours: u64,
    /// VMs crammed into the home DC.
    pub vms: usize,
    /// Home DC index (2 = Barcelona, the paper's testbed home).
    pub home_dc: usize,
    /// Hosts per DC (the home DC has some intra-DC capacity; overload
    /// comes from cramming every VM into it anyway).
    pub pms_per_dc: usize,
    /// Load multiplier (chosen to overload the home DC at peaks).
    pub load_scale: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for DelocConfig {
    fn default() -> Self {
        DelocConfig {
            hours: 24,
            vms: 5,
            home_dc: 2,
            pms_per_dc: 2,
            load_scale: 0.9,
            seed: 6,
        }
    }
}

impl DelocConfig {
    /// Short run for tests.
    pub fn quick(seed: u64) -> Self {
        DelocConfig {
            hours: 5,
            vms: 4,
            home_dc: 2,
            pms_per_dc: 2,
            load_scale: 0.9,
            seed,
        }
    }
}

/// Both arms' outcomes.
pub struct DelocResult {
    /// VMs pinned to the home DC.
    pub fixed: RunOutcome,
    /// VMs allowed to de-locate.
    pub delocating: RunOutcome,
}

impl DelocResult {
    /// SLA gained by allowing de-location.
    pub fn sla_gain(&self) -> f64 {
        self.delocating.mean_sla - self.fixed.mean_sla
    }

    /// Net benefit per VM per day, € (the paper's 0.348 €/VM/day
    /// metric).
    pub fn benefit_eur_per_vm_day(&self, vms: usize) -> f64 {
        let days = self.fixed.duration.as_hours_f64() / 24.0;
        if days <= 0.0 || vms == 0 {
            return 0.0;
        }
        (self.delocating.profit.profit_eur() - self.fixed.profit.profit_eur()) / (vms as f64 * days)
    }
}

/// Stage 2: the pinned and de-locating arms.
fn arms(cfg: &DelocConfig) -> Vec<Arm> {
    let build = || {
        ScenarioBuilder::paper_multi_dc()
            .vms(cfg.vms)
            .pms_per_dc(cfg.pms_per_dc)
            .load_scale(cfg.load_scale)
            .deploy_all_in(cfg.home_dc)
            .seed(cfg.seed)
            .build()
    };
    let fixed: Box<dyn PlacementPolicy> = Box::new(StaticPolicy(TrueOracle::new()));
    let delocating: Box<dyn PlacementPolicy> = Box::new(HierarchicalPolicy::new(TrueOracle::new()));
    vec![
        Arm::new("fixed", build(), fixed, cfg.hours),
        Arm::new("delocating", build(), delocating, cfg.hours),
    ]
}

/// Runs both arms in parallel.
pub fn run(cfg: &DelocConfig) -> DelocResult {
    let mut outcomes = experiment::execute(arms(cfg)).into_iter();
    DelocResult {
        fixed: outcomes.next().expect("fixed arm").1,
        delocating: outcomes.next().expect("de-locating arm").1,
    }
}

/// The registry-facing experiment. The paper reports this one as a
/// ΔSLA/benefit narrative, so the report stays table-only.
pub struct Deloc {
    /// Arm configuration.
    pub cfg: DelocConfig,
}

impl Experiment for Deloc {
    fn arms(&mut self, _training: Option<&crate::training::TrainingOutcome>) -> Vec<Arm> {
        arms(&self.cfg)
    }

    fn emit(&self, run: ExperimentRun) -> ExperimentReport {
        let mut outcomes = run.into_outcomes().into_iter();
        let result = DelocResult {
            fixed: outcomes.next().expect("fixed arm"),
            delocating: outcomes.next().expect("de-locating arm"),
        };
        ExperimentReport {
            text: render(&result, self.cfg.vms),
            metrics: Vec::new(),
        }
    }
}

/// Renders the comparison.
pub fn render(result: &DelocResult, vms: usize) -> String {
    let mut t = TextTable::new(&["scenario", "mean SLA", "€/h", "avg W", "migrations"]);
    for (label, o) in [
        ("fixed-home-DC", &result.fixed),
        ("de-locating", &result.delocating),
    ] {
        t.row(vec![
            label.to_string(),
            format!("{:.4}", o.mean_sla),
            format!("{:.4}", o.eur_per_hour()),
            format!("{:.1}", o.avg_watts),
            o.migrations.to_string(),
        ]);
    }
    format!(
        "De-location benefit — ΔSLA = {:+.4}, benefit = {:+.3} €/VM/day\n{}",
        result.sla_gain(),
        result.benefit_eur_per_vm_day(vms),
        t.render()
    )
}
