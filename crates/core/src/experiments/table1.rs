//! E-T1 — the paper's **Table I**: learning details for each predicted
//! element.
//!
//! Collects monitored samples from exploration runs on the intra-DC
//! testbed, trains the seven predictors with the paper's method choices
//! (M5P M=4 / Linear Regression / M5P M=2 / k-NN K=4) and a 66/34 split,
//! and reports correlation, MAE, error σ, train/val sizes and target
//! ranges — the exact columns of the paper's table.

use crate::experiment::{Arm, Experiment, ExperimentReport, ExperimentRun};
use crate::report::TextTable;
use crate::training::{collect_training_data, train_suite, TrainingOutcome};
use pamdc_ml::metrics::table_header;

/// Configuration for the Table-I reproduction.
#[derive(Clone, Debug)]
pub struct Table1Config {
    /// VMs in the collection scenario.
    pub vms: usize,
    /// Load scales visited by the exploration runs.
    pub scales: Vec<f64>,
    /// Simulated hours per scale.
    pub hours_per_scale: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for Table1Config {
    fn default() -> Self {
        Table1Config {
            vms: 5,
            scales: vec![0.4, 0.8, 1.2, 1.6],
            hours_per_scale: 8,
            seed: 2013,
        }
    }
}

/// A faster configuration for tests/benches.
impl Table1Config {
    /// Reduced collection effort (seconds, not minutes, of wall time).
    pub fn quick(seed: u64) -> Self {
        Table1Config {
            vms: 4,
            scales: vec![0.5, 1.0, 1.5],
            hours_per_scale: 4,
            seed,
        }
    }
}

/// Runs the experiment.
pub fn run(cfg: &Table1Config) -> TrainingOutcome {
    let collector = collect_training_data(cfg.vms, &cfg.scales, cfg.hours_per_scale, cfg.seed);
    train_suite(&collector, cfg.seed)
}

/// The registry-facing experiment: Table I *is* the pipeline's training
/// stage, so it declares training, no arms, and renders the outcome.
pub struct Table1 {
    /// Collection/training configuration.
    pub cfg: Table1Config,
}

impl Experiment for Table1 {
    fn training(&self) -> Option<Table1Config> {
        Some(self.cfg.clone())
    }

    fn arms(&mut self, _training: Option<&TrainingOutcome>) -> Vec<Arm> {
        Vec::new()
    }

    fn emit(&self, run: ExperimentRun) -> ExperimentReport {
        let outcome = run.training();
        ExperimentReport {
            text: format!("{}\n{}", render(outcome), render_comparison(outcome)),
            metrics: vec![
                (
                    "vm_tick_samples".to_string(),
                    outcome.sample_counts.0 as f64,
                ),
                (
                    "pm_tick_samples".to_string(),
                    outcome.sample_counts.1 as f64,
                ),
            ],
        }
    }
}

/// Renders the paper-style table.
pub fn render(outcome: &TrainingOutcome) -> String {
    let mut out = String::new();
    out.push_str("Table I — learning details for each predicted element\n");
    out.push_str(&table_header());
    out.push('\n');
    for (name, rep) in &outcome.reports {
        out.push_str(&rep.to_row(name));
        out.push('\n');
    }
    out
}

/// Renders a compact comparison against the paper's published values.
pub fn render_comparison(outcome: &TrainingOutcome) -> String {
    // Paper correlations, same order as PredictionTarget::ALL.
    let paper = [
        ("Predict VM CPU", 0.854),
        ("Predict VM MEM", 0.994),
        ("Predict VM IN", 0.804),
        ("Predict VM OUT", 0.777),
        ("Predict PM CPU", 0.909),
        ("Predict VM RT", 0.865),
        ("Predict VM SLA", 0.985),
    ];
    let mut t = TextTable::new(&["Target", "Method", "paper corr", "ours corr", "ours MAE"]);
    for ((name, rep), (pname, pcorr)) in outcome.reports.iter().zip(paper) {
        debug_assert_eq!(name, pname);
        t.row(vec![
            name.clone(),
            rep.method.clone(),
            format!("{pcorr:.3}"),
            format!("{:.3}", rep.correlation),
            format!("{:.3}", rep.mae),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table1_reproduces_shape() {
        let out = run(&Table1Config::quick(11));
        assert_eq!(out.reports.len(), 7);
        // Methods match the paper's choices.
        let methods: Vec<&str> = out.reports.iter().map(|(_, r)| r.method.as_str()).collect();
        assert_eq!(
            methods,
            vec!["M5P", "Linear Reg.", "M5P", "M5P", "M5P", "M5P", "K-NN"]
        );
        // Table renders with every row.
        let rendered = render(&out);
        for (name, _) in &out.reports {
            assert!(rendered.contains(name));
        }
        let cmp = render_comparison(&out);
        assert!(cmp.contains("paper corr"));
    }
}
