//! E-F4 — the paper's **Figure 4**: intra-DC scheduling comparatives.
//!
//! One Barcelona DC, 4 Atom PMs, 5 web-service VMs, a 24-hour scaled
//! Li-BCN-style day, a scheduling round every 10 minutes. Three arms,
//! exactly the paper's §V-B:
//!
//! * **BF** — Best-Fit sizing VMs by the last-10-minute monitoring
//!   window, optimizing "just power and latency";
//! * **BF-OB** — the same with 2× resource overbooking;
//! * **BF-ML** — Best-Fit driven by the Table-I predictors.
//!
//! Expected shape: BF-ML (de)consolidates with the load and keeps SLA
//! high at peaks; plain BF uses fewer PMs but bleeds SLA under load;
//! BF-OB protects SLA at systematically higher power. A fourth
//! ground-truth arm (**BF-True**) bounds what any predictor could do.

use crate::experiment::{self, Arm, Experiment, ExperimentReport, ExperimentRun};
use crate::experiments::table1::Table1Config;
use crate::policy::BestFitPolicy;
use crate::report::TextTable;
use crate::scenario::ScenarioBuilder;
use crate::simulation::RunOutcome;
use crate::training::TrainingOutcome;
use pamdc_sched::oracle::{MlOracle, MonitorOracle, TrueOracle};

/// Configuration of the Figure-4 reproduction.
#[derive(Clone, Debug)]
pub struct Fig4Config {
    /// Simulated hours (paper: 24).
    pub hours: u64,
    /// VM count (paper: 5).
    pub vms: usize,
    /// Load multiplier.
    pub load_scale: f64,
    /// Scenario seed.
    pub seed: u64,
    /// Include the BF-True upper-bound arm.
    pub include_true_arm: bool,
}

impl Default for Fig4Config {
    fn default() -> Self {
        Fig4Config {
            hours: 24,
            vms: 5,
            load_scale: 1.0,
            seed: 4,
            include_true_arm: true,
        }
    }
}

impl Fig4Config {
    /// Short run for tests.
    pub fn quick(seed: u64) -> Self {
        Fig4Config {
            hours: 14,
            vms: 5,
            load_scale: 1.0,
            seed,
            include_true_arm: false,
        }
    }
}

/// All arms' outcomes.
pub struct Fig4Result {
    /// One outcome per arm, in `[BF, BF-OB, BF-ML, (BF-True)]` order.
    pub outcomes: Vec<RunOutcome>,
}

/// Stage 2: the comparison arms, labelled after their policies.
fn arms(cfg: &Fig4Config, training: &TrainingOutcome) -> Vec<Arm> {
    let scenario = || {
        ScenarioBuilder::paper_intra_dc()
            .vms(cfg.vms)
            .load_scale(cfg.load_scale)
            .seed(cfg.seed)
            .build()
    };
    let mut policies: Vec<Box<dyn crate::policy::PlacementPolicy>> = vec![
        Box::new(BestFitPolicy::new(MonitorOracle::plain())),
        Box::new(BestFitPolicy::new(MonitorOracle::overbooked())),
        Box::new(BestFitPolicy::new(MlOracle::new(training.suite.clone()))),
    ];
    if cfg.include_true_arm {
        policies.push(Box::new(BestFitPolicy::new(TrueOracle::new())));
    }
    policies
        .into_iter()
        .map(|policy| Arm::named_after_policy(scenario(), policy, cfg.hours))
        .collect()
}

/// Runs every arm (in parallel — the runs are independent).
pub fn run(cfg: &Fig4Config, training: &TrainingOutcome) -> Fig4Result {
    Fig4Result {
        outcomes: experiment::execute(arms(cfg, training))
            .into_iter()
            .map(|(_, o)| o)
            .collect(),
    }
}

/// The registry-facing experiment: training is mandatory (the BF-ML arm
/// needs the suite even when the spec's policy oracle is `true`).
pub struct Fig4 {
    /// Arm configuration.
    pub cfg: Fig4Config,
    /// Table-I training configuration.
    pub training: Table1Config,
}

impl Experiment for Fig4 {
    fn training(&self) -> Option<Table1Config> {
        Some(self.training.clone())
    }

    fn arms(&mut self, training: Option<&TrainingOutcome>) -> Vec<Arm> {
        arms(&self.cfg, training.expect("fig4 declares training"))
    }

    fn emit(&self, run: ExperimentRun) -> ExperimentReport {
        let metrics = run.arm_metrics();
        let result = Fig4Result {
            outcomes: run.into_outcomes(),
        };
        ExperimentReport {
            text: render(&result),
            metrics,
        }
    }
}

/// Summary table matching the figure's aggregate panels.
pub fn render(result: &Fig4Result) -> String {
    let mut t = TextTable::new(&[
        "policy",
        "mean SLA",
        "avg W",
        "avg PMs on",
        "migrations",
        "dropped req",
        "€/h",
    ]);
    for o in &result.outcomes {
        t.row(vec![
            o.policy_name.clone(),
            format!("{:.4}", o.mean_sla),
            format!("{:.1}", o.avg_watts),
            format!("{:.2}", o.avg_active_pms),
            o.migrations.to_string(),
            format!("{:.0}", o.dropped_requests),
            format!("{:.4}", o.eur_per_hour()),
        ]);
    }
    format!(
        "Figure 4 — intra-DC scheduling comparatives\n{}",
        t.render()
    )
}
