//! E-F4 — the paper's **Figure 4**: intra-DC scheduling comparatives.
//!
//! One Barcelona DC, 4 Atom PMs, 5 web-service VMs, a 24-hour scaled
//! Li-BCN-style day, a scheduling round every 10 minutes. Three arms,
//! exactly the paper's §V-B:
//!
//! * **BF** — Best-Fit sizing VMs by the last-10-minute monitoring
//!   window, optimizing "just power and latency";
//! * **BF-OB** — the same with 2× resource overbooking;
//! * **BF-ML** — Best-Fit driven by the Table-I predictors.
//!
//! Expected shape: BF-ML (de)consolidates with the load and keeps SLA
//! high at peaks; plain BF uses fewer PMs but bleeds SLA under load;
//! BF-OB protects SLA at systematically higher power. A fourth
//! ground-truth arm (**BF-True**) bounds what any predictor could do.

use crate::policy::BestFitPolicy;
use crate::report::TextTable;
use crate::scenario::ScenarioBuilder;
use crate::simulation::{RunOutcome, SimulationRunner};
use crate::training::TrainingOutcome;
use pamdc_sched::oracle::{MlOracle, MonitorOracle, TrueOracle};
use pamdc_simcore::time::SimDuration;
use std::sync::Arc;

/// Configuration of the Figure-4 reproduction.
#[derive(Clone, Debug)]
pub struct Fig4Config {
    /// Simulated hours (paper: 24).
    pub hours: u64,
    /// VM count (paper: 5).
    pub vms: usize,
    /// Load multiplier.
    pub load_scale: f64,
    /// Scenario seed.
    pub seed: u64,
    /// Include the BF-True upper-bound arm.
    pub include_true_arm: bool,
}

impl Default for Fig4Config {
    fn default() -> Self {
        Fig4Config {
            hours: 24,
            vms: 5,
            load_scale: 1.0,
            seed: 4,
            include_true_arm: true,
        }
    }
}

impl Fig4Config {
    /// Short run for tests.
    pub fn quick(seed: u64) -> Self {
        Fig4Config {
            hours: 14,
            vms: 5,
            load_scale: 1.0,
            seed,
            include_true_arm: false,
        }
    }
}

/// All arms' outcomes.
pub struct Fig4Result {
    /// One outcome per arm, in `[BF, BF-OB, BF-ML, (BF-True)]` order.
    pub outcomes: Vec<RunOutcome>,
}

/// Runs every arm (in parallel — the runs are independent).
pub fn run(cfg: &Fig4Config, training: &TrainingOutcome) -> Fig4Result {
    let suite = training.suite.clone();
    let duration = SimDuration::from_hours(cfg.hours);
    let scenario = || {
        ScenarioBuilder::paper_intra_dc()
            .vms(cfg.vms)
            .load_scale(cfg.load_scale)
            .seed(cfg.seed)
            .build()
    };

    enum Arm {
        Bf,
        BfOb,
        BfMl(Arc<pamdc_ml::predictors::PredictorSuite>),
        BfTrue,
    }
    let mut arms = vec![Arm::Bf, Arm::BfOb, Arm::BfMl(suite)];
    if cfg.include_true_arm {
        arms.push(Arm::BfTrue);
    }

    let jobs: Vec<(Arm, _)> = arms.into_iter().map(|arm| (arm, scenario())).collect();
    let outcomes: Vec<RunOutcome> = pamdc_simcore::par::parallel_map(jobs, |(arm, scenario)| {
        let policy: Box<dyn crate::policy::PlacementPolicy> = match arm {
            Arm::Bf => Box::new(BestFitPolicy::new(MonitorOracle::plain())),
            Arm::BfOb => Box::new(BestFitPolicy::new(MonitorOracle::overbooked())),
            Arm::BfMl(suite) => Box::new(BestFitPolicy::new(MlOracle::new(suite))),
            Arm::BfTrue => Box::new(BestFitPolicy::new(TrueOracle::new())),
        };
        SimulationRunner::new(scenario, policy).run(duration).0
    });

    Fig4Result { outcomes }
}

/// Summary table matching the figure's aggregate panels.
pub fn render(result: &Fig4Result) -> String {
    let mut t = TextTable::new(&[
        "policy",
        "mean SLA",
        "avg W",
        "avg PMs on",
        "migrations",
        "dropped req",
        "€/h",
    ]);
    for o in &result.outcomes {
        t.row(vec![
            o.policy_name.clone(),
            format!("{:.4}", o.mean_sla),
            format!("{:.1}", o.avg_watts),
            format!("{:.2}", o.avg_active_pms),
            o.migrations.to_string(),
            format!("{:.0}", o.dropped_requests),
            format!("{:.4}", o.eur_per_hour()),
        ]);
    }
    format!(
        "Figure 4 — intra-DC scheduling comparatives\n{}",
        t.render()
    )
}
