//! E-F7/T3 — the paper's **Figure 7 and Table III**: static vs dynamic
//! multi-DC management for 5 VMs.
//!
//! | (paper)        | Avg €/h | Avg W  | Avg SLA |
//! |----------------|---------|--------|---------|
//! | Static-Global  | 0.745   | 175.9  | 0.921   |
//! | Dynamic        | 0.757   | 102.0  | 0.930   |
//!
//! The headline claim: the dynamic scheduler cuts energy by ~42% (it
//! consolidates across DCs, the static fleet cannot) while holding or
//! slightly improving SLA and net €/h.

use crate::experiment::{self, Arm, Experiment, ExperimentReport, ExperimentRun};
use crate::experiments::table1::Table1Config;
use crate::policy::{HierarchicalPolicy, PlacementPolicy, StaticPolicy};
use crate::report::TextTable;
use crate::scenario::ScenarioBuilder;
use crate::simulation::RunOutcome;
use crate::training::TrainingOutcome;
use pamdc_sched::oracle::{MlOracle, TrueOracle};

/// Configuration of the Table-III reproduction.
#[derive(Clone, Debug)]
pub struct Table3Config {
    /// Simulated hours (paper reports day-scale averages).
    pub hours: u64,
    /// VMs (paper: 5).
    pub vms: usize,
    /// Load multiplier.
    pub load_scale: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for Table3Config {
    fn default() -> Self {
        Table3Config {
            hours: 24,
            vms: 5,
            load_scale: 1.15,
            seed: 8,
        }
    }
}

impl Table3Config {
    /// Short run for tests.
    pub fn quick(seed: u64) -> Self {
        Table3Config {
            hours: 4,
            vms: 5,
            load_scale: 1.0,
            seed,
        }
    }
}

/// Both arms.
pub struct Table3Result {
    /// Static-Global: VMs never leave their home DC.
    pub static_global: RunOutcome,
    /// Dynamic: the hierarchical scheduler may migrate across DCs.
    pub dynamic: RunOutcome,
}

impl Table3Result {
    /// Fractional energy saving of dynamic over static (paper: ≈ 0.42).
    pub fn energy_saving_frac(&self) -> f64 {
        if self.static_global.avg_watts <= 0.0 {
            return 0.0;
        }
        1.0 - self.dynamic.avg_watts / self.static_global.avg_watts
    }
}

/// Stage 2: the static and dynamic arms.
fn arms(cfg: &Table3Config, training: Option<&TrainingOutcome>) -> Vec<Arm> {
    let build = || {
        ScenarioBuilder::paper_multi_dc()
            .vms(cfg.vms)
            .load_scale(cfg.load_scale)
            .seed(cfg.seed)
            .build()
    };
    let dynamic: Box<dyn PlacementPolicy> = match training {
        Some(t) => Box::new(HierarchicalPolicy::new(MlOracle::new(t.suite.clone()))),
        None => Box::new(HierarchicalPolicy::new(TrueOracle::new())),
    };
    vec![
        Arm::new(
            "static",
            build(),
            Box::new(StaticPolicy(TrueOracle::new())),
            cfg.hours,
        ),
        Arm::new("dynamic", build(), dynamic, cfg.hours),
    ]
}

/// Runs both arms in parallel; uses the ML oracle when supplied.
pub fn run(cfg: &Table3Config, training: Option<&TrainingOutcome>) -> Table3Result {
    let mut outcomes = experiment::execute(arms(cfg, training)).into_iter();
    Table3Result {
        static_global: outcomes.next().expect("static arm").1,
        dynamic: outcomes.next().expect("dynamic arm").1,
    }
}

/// The registry-facing experiment.
pub struct Fig7Table3 {
    /// Arm configuration.
    pub cfg: Table3Config,
    /// Table-I training configuration (`None` = ground-truth oracle).
    pub training: Option<Table1Config>,
}

impl Experiment for Fig7Table3 {
    fn training(&self) -> Option<Table1Config> {
        self.training.clone()
    }

    fn arms(&mut self, training: Option<&TrainingOutcome>) -> Vec<Arm> {
        arms(&self.cfg, training)
    }

    fn emit(&self, run: ExperimentRun) -> ExperimentReport {
        let mut metrics = run.arm_metrics();
        let mut outcomes = run.into_outcomes().into_iter();
        let result = Table3Result {
            static_global: outcomes.next().expect("static arm"),
            dynamic: outcomes.next().expect("dynamic arm"),
        };
        metrics.push((
            "energy_saving_frac".to_string(),
            result.energy_saving_frac(),
        ));
        ExperimentReport {
            text: render(&result),
            metrics,
        }
    }
}

/// Renders Table III with the paper's published values alongside.
pub fn render(result: &Table3Result) -> String {
    let mut t = TextTable::new(&[
        "scenario",
        "Avg Euro/h",
        "Avg Watt",
        "Avg SLA",
        "migrations",
        "paper €/h",
        "paper W",
        "paper SLA",
    ]);
    let rows: [(&str, &RunOutcome, f64, f64, f64); 2] = [
        ("Static-Global", &result.static_global, 0.745, 175.9, 0.921),
        ("Dynamic", &result.dynamic, 0.757, 102.0, 0.930),
    ];
    for (label, o, p_eur, p_w, p_sla) in rows {
        t.row(vec![
            label.to_string(),
            format!("{:.4}", o.eur_per_hour()),
            format!("{:.1}", o.avg_watts),
            format!("{:.4}", o.mean_sla),
            o.migrations.to_string(),
            format!("{p_eur:.3}"),
            format!("{p_w:.1}"),
            format!("{p_sla:.3}"),
        ]);
    }
    format!(
        "Table III / Figure 7 — static vs dynamic multi-DC (energy saving: {:.1}%, paper: 42%)\n{}",
        100.0 * result.energy_saving_frac(),
        t.render()
    )
}
