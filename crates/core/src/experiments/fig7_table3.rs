//! E-F7/T3 — the paper's **Figure 7 and Table III**: static vs dynamic
//! multi-DC management for 5 VMs.
//!
//! | (paper)        | Avg €/h | Avg W  | Avg SLA |
//! |----------------|---------|--------|---------|
//! | Static-Global  | 0.745   | 175.9  | 0.921   |
//! | Dynamic        | 0.757   | 102.0  | 0.930   |
//!
//! The headline claim: the dynamic scheduler cuts energy by ~42% (it
//! consolidates across DCs, the static fleet cannot) while holding or
//! slightly improving SLA and net €/h.

use crate::policy::{HierarchicalPolicy, PlacementPolicy, StaticPolicy};
use crate::report::TextTable;
use crate::scenario::ScenarioBuilder;
use crate::simulation::{RunOutcome, SimulationRunner};
use crate::training::TrainingOutcome;
use pamdc_sched::oracle::{MlOracle, TrueOracle};
use pamdc_simcore::time::SimDuration;

/// Configuration of the Table-III reproduction.
#[derive(Clone, Debug)]
pub struct Table3Config {
    /// Simulated hours (paper reports day-scale averages).
    pub hours: u64,
    /// VMs (paper: 5).
    pub vms: usize,
    /// Load multiplier.
    pub load_scale: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for Table3Config {
    fn default() -> Self {
        Table3Config {
            hours: 24,
            vms: 5,
            load_scale: 1.15,
            seed: 8,
        }
    }
}

impl Table3Config {
    /// Short run for tests.
    pub fn quick(seed: u64) -> Self {
        Table3Config {
            hours: 4,
            vms: 5,
            load_scale: 1.0,
            seed,
        }
    }
}

/// Both arms.
pub struct Table3Result {
    /// Static-Global: VMs never leave their home DC.
    pub static_global: RunOutcome,
    /// Dynamic: the hierarchical scheduler may migrate across DCs.
    pub dynamic: RunOutcome,
}

impl Table3Result {
    /// Fractional energy saving of dynamic over static (paper: ≈ 0.42).
    pub fn energy_saving_frac(&self) -> f64 {
        if self.static_global.avg_watts <= 0.0 {
            return 0.0;
        }
        1.0 - self.dynamic.avg_watts / self.static_global.avg_watts
    }
}

/// Runs both arms in parallel; uses the ML oracle when supplied.
pub fn run(cfg: &Table3Config, training: Option<&TrainingOutcome>) -> Table3Result {
    let duration = SimDuration::from_hours(cfg.hours);
    let build = || {
        ScenarioBuilder::paper_multi_dc()
            .vms(cfg.vms)
            .load_scale(cfg.load_scale)
            .seed(cfg.seed)
            .build()
    };
    let suite = training.map(|t| t.suite.clone());
    let (static_global, dynamic) = pamdc_simcore::par::join(
        || {
            SimulationRunner::new(build(), Box::new(StaticPolicy(TrueOracle::new())))
                .run(duration)
                .0
        },
        move || {
            let policy: Box<dyn PlacementPolicy> = match suite {
                Some(suite) => Box::new(HierarchicalPolicy::new(MlOracle::new(suite))),
                None => Box::new(HierarchicalPolicy::new(TrueOracle::new())),
            };
            SimulationRunner::new(build(), policy).run(duration).0
        },
    );
    Table3Result {
        static_global,
        dynamic,
    }
}

/// Renders Table III with the paper's published values alongside.
pub fn render(result: &Table3Result) -> String {
    let mut t = TextTable::new(&[
        "scenario",
        "Avg Euro/h",
        "Avg Watt",
        "Avg SLA",
        "migrations",
        "paper €/h",
        "paper W",
        "paper SLA",
    ]);
    let rows: [(&str, &RunOutcome, f64, f64, f64); 2] = [
        ("Static-Global", &result.static_global, 0.745, 175.9, 0.921),
        ("Dynamic", &result.dynamic, 0.757, 102.0, 0.930),
    ];
    for (label, o, p_eur, p_w, p_sla) in rows {
        t.row(vec![
            label.to_string(),
            format!("{:.4}", o.eur_per_hour()),
            format!("{:.1}", o.avg_watts),
            format!("{:.4}", o.mean_sla),
            o.migrations.to_string(),
            format!("{p_eur:.3}"),
            format!("{p_w:.1}"),
            format!("{p_sla:.3}"),
        ]);
    }
    format!(
        "Table III / Figure 7 — static vs dynamic multi-DC (energy saving: {:.1}%, paper: 42%)\n{}",
        100.0 * result.energy_saving_frac(),
        t.render()
    )
}
