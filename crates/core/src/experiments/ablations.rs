//! Design-choice ablations the paper discusses in passing.
//!
//! * **E-AB1** (§IV-B): "better results are obtained if SLA is predicted
//!   directly" — we compare the k-NN direct-SLA path against predicting
//!   RT with M5P and converting through the SLA formula.
//! * **E-AB2** (§V-B): the monitor bias that defeats plain Best-Fit — a
//!   saturated VM's observed usage underestimates what its load actually
//!   demands. We quantify the observed/demanded CPU ratio in saturated
//!   vs unsaturated ticks.

use crate::experiment::{Experiment, ExperimentReport, ExperimentRun};
use crate::report::TextTable;
use crate::training::{
    build_stage1_datasets, build_stage2_datasets, collect_training_data, TrainingCollector,
};
use pamdc_ml::metrics::EvalReport;
use pamdc_ml::predictors::{PredictionTarget, TrainedPredictor};
use pamdc_perf::demand::cpu_demand_pct;
use pamdc_perf::sla::SlaFunction;
use pamdc_simcore::rng::RngStream;
use pamdc_simcore::stats::{mean_absolute_error, pearson, OnlineStats};

/// Configuration of the combined ablation study: the collection runs
/// mirror the Table-I exploration regime.
#[derive(Clone, Debug)]
pub struct AblationsConfig {
    /// VMs in the collection scenario.
    pub vms: usize,
    /// Load scales visited by the exploration runs.
    pub scales: Vec<f64>,
    /// Simulated hours per scale.
    pub hours_per_scale: u64,
    /// Master seed (collection, splits, and model init).
    pub seed: u64,
}

impl Default for AblationsConfig {
    fn default() -> Self {
        let t = crate::experiments::table1::Table1Config::default();
        AblationsConfig {
            vms: t.vms,
            scales: t.scales,
            hours_per_scale: t.hours_per_scale,
            seed: t.seed,
        }
    }
}

impl AblationsConfig {
    /// Reduced collection effort for tests and CI smoke.
    pub fn quick(seed: u64) -> Self {
        AblationsConfig {
            vms: 4,
            scales: vec![0.6, 1.2],
            hours_per_scale: 4,
            seed,
        }
    }
}

/// Both ablations' results.
pub struct AblationsResult {
    /// E-AB1: direct-SLA vs RT-then-formula.
    pub path: SlaPathResult,
    /// E-AB2: the monitor bias.
    pub bias: MonitorBiasResult,
}

/// Runs both ablations from one shared collection pass: trains the
/// stage-1 CPU model the way [`crate::training::train_suite`] does
/// (same derived RNG stream), then evaluates both prediction paths and
/// the monitor-bias ratios.
pub fn run(cfg: &AblationsConfig) -> AblationsResult {
    let collector = collect_training_data(cfg.vms, &cfg.scales, cfg.hours_per_scale, cfg.seed);
    let stage1 = build_stage1_datasets(&collector);
    let (target, cpu_data) = stage1
        .iter()
        .find(|(t, _)| *t == PredictionTarget::VmCpu)
        .expect("stage 1 contains the CPU dataset");
    let mut rng = RngStream::root(cfg.seed).derive(target.paper_name());
    let cpu_model = TrainedPredictor::train(*target, cpu_data, &mut rng);
    AblationsResult {
        path: sla_direct_vs_via_rt(&collector, &cpu_model, cfg.seed),
        bias: monitor_bias(&collector),
    }
}

/// The registry-facing experiment: an ML analysis over collected
/// samples, so it runs entirely in the emission stage.
pub struct Ablations {
    /// Collection configuration.
    pub cfg: AblationsConfig,
}

impl Experiment for Ablations {
    fn emit(&self, _run: ExperimentRun) -> ExperimentReport {
        let result = run(&self.cfg);
        ExperimentReport {
            metrics: vec![
                (
                    "sla_direct_correlation".to_string(),
                    result.path.direct.correlation,
                ),
                ("sla_direct_mae".to_string(), result.path.direct.mae),
                (
                    "sla_via_rt_correlation".to_string(),
                    result.path.via_rt_correlation,
                ),
                ("sla_via_rt_mae".to_string(), result.path.via_rt_mae),
                (
                    "bias_unsaturated_ratio".to_string(),
                    result.bias.unsaturated_ratio,
                ),
                (
                    "bias_saturated_ratio".to_string(),
                    result.bias.saturated_ratio,
                ),
            ],
            text: render(&result.path, &result.bias),
        }
    }
}

/// E-AB1 result: both prediction paths on the same test split.
pub struct SlaPathResult {
    /// Direct k-NN SLA prediction quality.
    pub direct: EvalReport,
    /// RT-then-formula path quality (against the same SLA truth).
    pub via_rt_correlation: f64,
    /// MAE of the RT-then-formula path.
    pub via_rt_mae: f64,
}

/// Runs E-AB1 from collected samples and the stage-1 CPU model.
pub fn sla_direct_vs_via_rt(
    collector: &TrainingCollector,
    cpu_model: &TrainedPredictor,
    seed: u64,
) -> SlaPathResult {
    let stage2 = build_stage2_datasets(collector, cpu_model);
    let (_, rt_data) = &stage2[0];
    let (_, sla_data) = &stage2[1];

    // One shared shuffled split for both paths (same derived stream =>
    // identical row partition).
    let (rt_train, rt_test) = rt_data.split(0.66, &mut RngStream::root(seed).derive("split"));
    let (sla_train, sla_test) = sla_data.split(0.66, &mut RngStream::root(seed).derive("split"));

    // Path A: direct SLA (k-NN).
    let direct_model = TrainedPredictor::train_presplit(
        PredictionTarget::VmSla,
        &sla_train,
        &sla_test,
        sla_data.target_range(),
    );

    // Path B: RT (M5P) then the SLA formula. The transport latency is the
    // last feature; SLA truth in the dataset already includes it.
    let rt_model = PredictionTarget::VmRt.fit(&rt_train);
    let sla_fn = SlaFunction::paper();
    let truth: Vec<f64> = sla_test.targets().to_vec();
    let via_rt: Vec<f64> = rt_test
        .rows()
        .iter()
        .map(|row| {
            let rt = rt_model.predict(row).max(0.0);
            let transport = row[6];
            sla_fn.fulfillment(rt + transport)
        })
        .collect();

    SlaPathResult {
        direct: direct_model.report,
        via_rt_correlation: pearson(&via_rt, &truth),
        via_rt_mae: mean_absolute_error(&via_rt, &truth),
    }
}

/// E-AB2 result: the monitor-bias ratios.
#[derive(Clone, Copy, Debug)]
pub struct MonitorBiasResult {
    /// Mean observed/demanded CPU ratio over unsaturated ticks (≈ 1).
    pub unsaturated_ratio: f64,
    /// Mean observed/demanded CPU ratio over saturated ticks (≪ 1).
    pub saturated_ratio: f64,
    /// Sample counts `(unsaturated, saturated)`.
    pub counts: (u64, u64),
}

/// Runs E-AB2 on collected samples.
pub fn monitor_bias(collector: &TrainingCollector) -> MonitorBiasResult {
    let mut unsat = OnlineStats::new();
    let mut sat = OnlineStats::new();
    for s in &collector.vm_ticks {
        // What the load *demands*, reconstructed from load features.
        let demanded = cpu_demand_pct(s.load[0], s.load[3], 2.0);
        if demanded <= 5.0 {
            continue; // idle ticks carry no signal
        }
        let ratio = s.observed.cpu / demanded;
        if s.saturated {
            sat.push(ratio);
        } else {
            unsat.push(ratio);
        }
    }
    MonitorBiasResult {
        unsaturated_ratio: unsat.mean(),
        saturated_ratio: sat.mean(),
        counts: (unsat.count(), sat.count()),
    }
}

/// Renders both ablations.
pub fn render(path: &SlaPathResult, bias: &MonitorBiasResult) -> String {
    let mut t = TextTable::new(&["ablation", "metric", "value"]);
    t.row(vec![
        "SLA direct (k-NN)".into(),
        "correlation".into(),
        format!("{:.4}", path.direct.correlation),
    ]);
    t.row(vec![
        "SLA direct (k-NN)".into(),
        "MAE".into(),
        format!("{:.4}", path.direct.mae),
    ]);
    t.row(vec![
        "SLA via RT (M5P+formula)".into(),
        "correlation".into(),
        format!("{:.4}", path.via_rt_correlation),
    ]);
    t.row(vec![
        "SLA via RT (M5P+formula)".into(),
        "MAE".into(),
        format!("{:.4}", path.via_rt_mae),
    ]);
    t.row(vec![
        "monitor bias".into(),
        "obs/demand CPU (unsaturated)".into(),
        format!("{:.3}", bias.unsaturated_ratio),
    ]);
    t.row(vec![
        "monitor bias".into(),
        "obs/demand CPU (saturated)".into(),
        format!("{:.3}", bias.saturated_ratio),
    ]);
    format!(
        "Ablations — SLA prediction path & monitor bias\n{}",
        t.render()
    )
}
