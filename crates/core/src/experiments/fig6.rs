//! E-F6 — the paper's **Figure 6**: full inter-DC scheduling, including
//! the minute-70–90 flash crowd "which clearly exceeds the capacity of
//! the system".
//!
//! Expected shape (paper §V-C): under heavy load the scheduler
//! deconsolidates across DCs (SLA revenue dominates); at low load it
//! consolidates toward cheap energy; the flash crowd dents SLA and the
//! system recovers after it passes.

use crate::experiment::{self, Arm, Experiment, ExperimentReport, ExperimentRun};
use crate::experiments::table1::Table1Config;
use crate::policy::{HierarchicalPolicy, PlacementPolicy};
use crate::report::TextTable;
use crate::scenario::ScenarioBuilder;
use crate::simulation::RunOutcome;
use crate::training::TrainingOutcome;
use pamdc_sched::oracle::{MlOracle, TrueOracle};
use pamdc_simcore::time::SimTime;

/// Configuration of the Figure-6 reproduction.
#[derive(Clone, Debug)]
pub struct Fig6Config {
    /// Simulated hours (paper's trace spans a few hours around the
    /// crowd; a full day shows the consolidation cycles too).
    pub hours: u64,
    /// VMs (paper: 5).
    pub vms: usize,
    /// Flash-crowd multiplier.
    pub flash_multiplier: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for Fig6Config {
    fn default() -> Self {
        Fig6Config {
            hours: 24,
            vms: 5,
            flash_multiplier: 8.0,
            seed: 7,
        }
    }
}

impl Fig6Config {
    /// Short run for tests (still covers the crowd window).
    pub fn quick(seed: u64) -> Self {
        Fig6Config {
            hours: 3,
            vms: 4,
            flash_multiplier: 8.0,
            seed,
        }
    }
}

/// Outcome plus flash-crowd window statistics.
pub struct Fig6Result {
    /// Full run.
    pub outcome: RunOutcome,
    /// Mean SLA inside the crowd window (minutes 70–90).
    pub sla_during_crowd: f64,
    /// Mean SLA before the crowd (minutes 0–70).
    pub sla_before_crowd: f64,
    /// Mean SLA in the hour after the crowd passes.
    pub sla_after_crowd: f64,
}

/// Stage 2: one arm, ML-believed when a suite is supplied.
fn arms(cfg: &Fig6Config, training: Option<&TrainingOutcome>) -> Vec<Arm> {
    let scenario = ScenarioBuilder::paper_multi_dc()
        .vms(cfg.vms)
        .flash_crowd(cfg.flash_multiplier)
        .seed(cfg.seed)
        .build();
    let policy: Box<dyn PlacementPolicy> = match training {
        Some(t) => Box::new(HierarchicalPolicy::new(MlOracle::new(t.suite.clone()))),
        None => Box::new(HierarchicalPolicy::new(TrueOracle::new())),
    };
    vec![Arm::new("", scenario, policy, cfg.hours)]
}

/// Runs the experiment with the ML oracle when a suite is supplied, the
/// ground-truth oracle otherwise.
pub fn run(cfg: &Fig6Config, training: Option<&TrainingOutcome>) -> Fig6Result {
    let outcome = experiment::execute(arms(cfg, training)).remove(0).1;
    result_from(outcome)
}

/// Stage 4: extracts the crowd-window statistics.
fn result_from(outcome: RunOutcome) -> Fig6Result {
    let sla = outcome.series.get("sla").expect("sla series");
    let m = SimTime::from_mins;
    Fig6Result {
        sla_before_crowd: sla.mean_in_window(m(0), m(70)),
        sla_during_crowd: sla.mean_in_window(m(70), m(90)),
        sla_after_crowd: sla.mean_in_window(m(90), m(150)),
        outcome,
    }
}

/// The registry-facing experiment: trains only when the spec's oracle
/// asks for ML beliefs.
pub struct Fig6 {
    /// Run configuration.
    pub cfg: Fig6Config,
    /// Table-I training configuration (`None` = ground-truth oracle).
    pub training: Option<Table1Config>,
}

impl Experiment for Fig6 {
    fn training(&self) -> Option<Table1Config> {
        self.training.clone()
    }

    fn arms(&mut self, training: Option<&TrainingOutcome>) -> Vec<Arm> {
        arms(&self.cfg, training)
    }

    fn emit(&self, run: ExperimentRun) -> ExperimentReport {
        let result = result_from(run.into_outcomes().remove(0));
        let mut metrics = vec![
            ("sla_before_crowd".to_string(), result.sla_before_crowd),
            ("sla_during_crowd".to_string(), result.sla_during_crowd),
            ("sla_after_crowd".to_string(), result.sla_after_crowd),
        ];
        metrics.extend(experiment::outcome_metrics("", &result.outcome));
        ExperimentReport {
            text: render(&result),
            metrics,
        }
    }
}

/// Renders the window summary.
pub fn render(result: &Fig6Result) -> String {
    let mut t = TextTable::new(&["window", "mean SLA"]);
    t.row(vec![
        "before crowd (0-70 min)".into(),
        format!("{:.4}", result.sla_before_crowd),
    ]);
    t.row(vec![
        "flash crowd (70-90 min)".into(),
        format!("{:.4}", result.sla_during_crowd),
    ]);
    t.row(vec![
        "after crowd (90-150 min)".into(),
        format!("{:.4}", result.sla_after_crowd),
    ]);
    format!(
        "Figure 6 — inter-DC scheduling with flash crowd ({} migrations, {:.1} W avg)\n{}",
        result.outcome.migrations,
        result.outcome.avg_watts,
        t.render()
    )
}
