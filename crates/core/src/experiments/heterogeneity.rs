//! E-HET — **price-heterogeneity sweep**, quantifying the paper's §V-C
//! prediction: *"As energy costs rise and markets become more
//! heterogeneous and competitive, one should anticipate larger
//! variations of energy prices across the world, and the benefit of
//! inter-DC optimization priming energy consumption should be more
//! obvious."*
//!
//! The sweep scales each DC's deviation from the mean Table II tariff by
//! a factor `k` (k = 1 is the paper's world; k = 8 a fiercely
//! heterogeneous market; prices are floored at 0.01 €/kWh) and runs the
//! static-global vs dynamic comparison of Figure 7 / Table III at every
//! k with a latency-neutral workload. The reported benefit is the energy
//! spend the dynamic scheduler avoids — expected to grow monotonically
//! (modulo plateauing once the fleet is fully consolidated in the
//! cheapest DC).

use crate::experiment::{self, Arm, Experiment, ExperimentReport, ExperimentRun};
use crate::policy::{HierarchicalPolicy, PlacementPolicy, StaticPolicy};
use crate::report::TextTable;
use crate::scenario::{Scenario, ScenarioBuilder};
use crate::simulation::{RunConfig, RunOutcome};
use pamdc_econ::prices::paper_prices;
use pamdc_green::tariff::Tariff;
use pamdc_infra::pm::MachineSpec;
use pamdc_sched::oracle::TrueOracle;

/// Configuration of the heterogeneity sweep.
#[derive(Clone, Debug)]
pub struct HeterogeneityConfig {
    /// Spread multipliers to test.
    pub spreads: Vec<f64>,
    /// Simulated hours per cell.
    pub hours: u64,
    /// VMs.
    pub vms: usize,
    /// Hosts per DC.
    pub pms_per_dc: usize,
    /// Machine mix per DC (`count` hosts of each spec). Empty = the
    /// paper's all-Atom fleet of `pms_per_dc` hosts; non-empty mixes
    /// come straight from the scenario spec's `[[topology.classes]]`
    /// table, so fleet heterogeneity composes with price heterogeneity.
    pub host_classes: Vec<(MachineSpec, usize)>,
    /// Load multiplier.
    pub load_scale: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for HeterogeneityConfig {
    fn default() -> Self {
        HeterogeneityConfig {
            spreads: vec![1.0, 2.0, 4.0, 8.0],
            hours: 12,
            vms: 4,
            pms_per_dc: 2,
            host_classes: Vec::new(),
            load_scale: 0.7,
            seed: 29,
        }
    }
}

impl HeterogeneityConfig {
    /// Two-cell sweep for tests.
    pub fn quick(seed: u64) -> Self {
        HeterogeneityConfig {
            spreads: vec![1.0, 6.0],
            hours: 8,
            vms: 3,
            ..HeterogeneityConfig {
                seed,
                ..Default::default()
            }
        }
    }
}

/// One sweep cell: both arms at one spread factor.
pub struct HeterogeneityCell {
    /// The spread multiplier.
    pub spread: f64,
    /// Static-global arm.
    pub static_global: RunOutcome,
    /// Dynamic arm.
    pub dynamic: RunOutcome,
}

impl HeterogeneityCell {
    /// Energy euros the dynamic arm avoids, as a fraction of static.
    pub fn energy_cost_saving_frac(&self) -> f64 {
        let s = self.static_global.profit.energy_eur;
        if s <= 0.0 {
            0.0
        } else {
            1.0 - self.dynamic.profit.energy_eur / s
        }
    }

    /// Net profit gain of dynamic over static, €/h.
    pub fn profit_gain_eur_h(&self) -> f64 {
        self.dynamic.eur_per_hour() - self.static_global.eur_per_hour()
    }
}

/// Stretches the Table II tariffs around their mean by `spread`.
fn stretched_prices(spread: f64) -> [f64; 4] {
    let base = paper_prices();
    let mean = base.iter().map(|p| p.eur_per_kwh).sum::<f64>() / 4.0;
    let mut out = [0.0; 4];
    for (i, p) in base.iter().enumerate() {
        out[i] = (mean + (p.eur_per_kwh - mean) * spread).max(0.01);
    }
    out
}

/// Builds one cell's world at the given spread.
fn build(cfg: &HeterogeneityConfig, spread: f64) -> Scenario {
    ScenarioBuilder::paper_multi_dc()
        .vms(cfg.vms)
        .pms_per_dc(cfg.pms_per_dc)
        .host_classes(cfg.host_classes.clone())
        .load_scale(cfg.load_scale)
        .seed(cfg.seed)
        .name(format!("heterogeneity-x{spread}"))
        .workload(pamdc_workload::libcn::uniform_multi_dc(
            cfg.vms,
            170.0 * cfg.load_scale,
            cfg.seed,
        ))
        .energy(move |_, mut env| {
            for (dc, &price) in stretched_prices(spread).iter().enumerate() {
                env = env.with_tariff(dc, Tariff::Flat(price));
            }
            env
        })
        .build()
}

/// Stage 2: two arms per spread, spread-major (`static` before
/// `dynamic` within a cell).
fn arms(cfg: &HeterogeneityConfig) -> Vec<Arm> {
    let run_cfg = RunConfig {
        plan_horizon_ticks: Some(60),
        ..RunConfig::default()
    };
    let mut arms = Vec::with_capacity(cfg.spreads.len() * 2);
    for &spread in &cfg.spreads {
        let static_policy: Box<dyn PlacementPolicy> = Box::new(StaticPolicy(TrueOracle::new()));
        let dynamic_policy: Box<dyn PlacementPolicy> =
            Box::new(HierarchicalPolicy::new(TrueOracle::new()));
        for (label, policy) in [
            (format!("x{spread}_static"), static_policy),
            (format!("x{spread}_dynamic"), dynamic_policy),
        ] {
            arms.push(
                Arm::new(label, build(cfg, spread), policy, cfg.hours).config(run_cfg.clone()),
            );
        }
    }
    arms
}

/// Stage 4: regroups the flat arm outcomes into cells.
fn cells_from(cfg: &HeterogeneityConfig, outcomes: Vec<RunOutcome>) -> Vec<HeterogeneityCell> {
    let mut outcomes = outcomes.into_iter();
    cfg.spreads
        .iter()
        .map(|&spread| HeterogeneityCell {
            spread,
            static_global: outcomes.next().expect("static arm"),
            dynamic: outcomes.next().expect("dynamic arm"),
        })
        .collect()
}

/// Runs the sweep (all arms of all cells in parallel).
pub fn run(cfg: &HeterogeneityConfig) -> Vec<HeterogeneityCell> {
    let outcomes = experiment::execute(arms(cfg))
        .into_iter()
        .map(|(_, o)| o)
        .collect();
    cells_from(cfg, outcomes)
}

/// The registry-facing experiment.
pub struct Heterogeneity {
    /// Sweep configuration.
    pub cfg: HeterogeneityConfig,
}

impl Experiment for Heterogeneity {
    fn arms(&mut self, _training: Option<&crate::training::TrainingOutcome>) -> Vec<Arm> {
        arms(&self.cfg)
    }

    fn emit(&self, run: ExperimentRun) -> ExperimentReport {
        let mut metrics = run.arm_metrics();
        let cells = cells_from(&self.cfg, run.into_outcomes());
        for c in &cells {
            metrics.push((
                format!("x{}_energy_cost_saving_frac", c.spread),
                c.energy_cost_saving_frac(),
            ));
            metrics.push((
                format!("x{}_profit_gain_eur_h", c.spread),
                c.profit_gain_eur_h(),
            ));
        }
        ExperimentReport {
            text: render(&cells),
            metrics,
        }
    }
}

/// Renders the sweep table.
pub fn render(cells: &[HeterogeneityCell]) -> String {
    let mut t = TextTable::new(&[
        "spread",
        "static energy €",
        "dynamic energy €",
        "saving %",
        "profit gain €/h",
        "dyn SLA",
        "stat SLA",
    ]);
    for c in cells {
        t.row(vec![
            format!("x{:.0}", c.spread),
            format!("{:.4}", c.static_global.profit.energy_eur),
            format!("{:.4}", c.dynamic.profit.energy_eur),
            format!("{:.1}", 100.0 * c.energy_cost_saving_frac()),
            format!("{:+.4}", c.profit_gain_eur_h()),
            format!("{:.4}", c.dynamic.mean_sla),
            format!("{:.4}", c.static_global.mean_sla),
        ]);
    }
    format!(
        "Price-heterogeneity sweep (§V-C prediction: dynamic benefit grows with spread)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stretch_preserves_mean_and_floors() {
        let k1 = stretched_prices(1.0);
        let base = paper_prices();
        for (i, p) in base.iter().enumerate() {
            assert!((k1[i] - p.eur_per_kwh).abs() < 1e-12, "k=1 is the paper");
        }
        let k8 = stretched_prices(8.0);
        let mean1: f64 = k1.iter().sum::<f64>() / 4.0;
        // Boston (cheapest) spreads downward, Barcelona upward.
        assert!(k8[3] < k1[3] && k8[2] > k1[2]);
        // Floor holds even at extreme spreads.
        assert!(stretched_prices(100.0).iter().all(|&p| p >= 0.01));
        let _ = mean1;
    }

    #[test]
    fn mixed_fleet_cells_run_and_stay_deterministic() {
        // Price heterogeneity on a machine-heterogeneous fleet: one
        // Atom + one small custom host per DC. The sweep must run, keep
        // its SLA sane, and reproduce bit-for-bit.
        let cfg = HeterogeneityConfig {
            spreads: vec![1.0, 6.0],
            hours: 4,
            vms: 3,
            host_classes: vec![
                (MachineSpec::atom(), 1),
                (MachineSpec::custom(2, 2048.0, 15.0, 22.0), 1),
            ],
            ..HeterogeneityConfig::default()
        };
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.len(), 2);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                x.dynamic.profit.energy_eur.to_bits(),
                y.dynamic.profit.energy_eur.to_bits()
            );
            assert!(x.dynamic.mean_sla > 0.5, "sla {}", x.dynamic.mean_sla);
        }
    }

    #[test]
    fn benefit_grows_with_heterogeneity() {
        let cells = run(&HeterogeneityConfig::quick(5));
        assert_eq!(cells.len(), 2);
        let low = &cells[0];
        let high = &cells[1];
        assert!(
            high.energy_cost_saving_frac() > low.energy_cost_saving_frac(),
            "saving at x{} ({:.3}) must exceed saving at x{} ({:.3})",
            high.spread,
            high.energy_cost_saving_frac(),
            low.spread,
            low.energy_cost_saving_frac()
        );
        // SLA must not be sacrificed for it.
        assert!(high.dynamic.mean_sla > high.static_global.mean_sla - 0.05);
        let rendered = render(&cells);
        assert!(rendered.contains("spread"));
    }
}
