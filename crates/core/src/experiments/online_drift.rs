//! E-OL — **on-line learning under concept drift** (paper future-work
//! item 4): *"the use of on-line learning methods, able to retrain
//! continuously on recent data, to make the system react quickly to
//! changes in either application behavior, hardware or middleware
//! changes, or workload characteristics"*.
//!
//! A fleet-wide "software update" lands halfway through an intra-DC run:
//! every VM's ground-truth memory footprint grows (bigger base image,
//! more memory per in-flight request). The load features the models see
//! are unchanged — only the feature→MEM mapping moved, which is exactly
//! the failure mode batch models cannot survive. Three predictors ride
//! the same prequential stream (predict first, then learn):
//!
//! * **frozen** — the paper's Table-I regime: linear regression fit once
//!   on pre-update data, never refit.
//! * **window** — [`OnlineLearner`]: sliding-window refits.
//! * **drift-aware** — [`DriftAwareLearner`]: Page–Hinkley on the error
//!   stream; on detection the stale window is flushed so the next refit
//!   is purely post-update.
//!
//! Expected shape: all three match before the update; the frozen model's
//! error jumps and never recovers; the window model recovers after its
//! buffer turns over; the drift-aware model recovers fastest.

use crate::experiment::{Experiment, ExperimentReport, ExperimentRun};
use crate::report::TextTable;
use crate::scenario::ScenarioBuilder;
use crate::simulation::{RunConfig, SimulationRunner};
use crate::training::TrainingCollector;
use pamdc_ml::dataset::Dataset;
use pamdc_ml::linreg::LinearRegression;
use pamdc_ml::online::{DriftAwareLearner, OnlineLearner, PageHinkley};
use pamdc_ml::Regressor;
use pamdc_perf::demand::VmPerfProfile;
use pamdc_simcore::time::{SimDuration, SimTime};

/// Configuration of the drift experiment.
#[derive(Clone, Debug)]
pub struct OnlineDriftConfig {
    /// Simulated hours; the update lands at the midpoint.
    pub hours: u64,
    /// VMs.
    pub vms: usize,
    /// Load multiplier.
    pub load_scale: f64,
    /// Sliding-window capacity of the online learners, samples.
    pub window: usize,
    /// Refit cadence, samples.
    pub refit_every: usize,
    /// Page–Hinkley slack (MB of absolute MEM error).
    pub ph_delta: f64,
    /// Page–Hinkley threshold (accumulated MB).
    pub ph_lambda: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for OnlineDriftConfig {
    fn default() -> Self {
        OnlineDriftConfig {
            hours: 16,
            vms: 5,
            load_scale: 0.8,
            window: 400,
            refit_every: 50,
            ph_delta: 10.0,
            ph_lambda: 1500.0,
            seed: 23,
        }
    }
}

impl OnlineDriftConfig {
    /// Short run for tests and benches.
    pub fn quick(seed: u64) -> Self {
        OnlineDriftConfig {
            hours: 8,
            vms: 4,
            ..OnlineDriftConfig {
                seed,
                ..Default::default()
            }
        }
    }

    /// The update instant.
    pub fn update_at(&self) -> SimTime {
        SimTime::from_hours(self.hours / 2)
    }
}

/// Prequential MAE of one model over the three stream segments.
#[derive(Clone, Copy, Debug, Default)]
pub struct SegmentedMae {
    /// Before the update (steady state).
    pub pre: f64,
    /// The first `transition` samples after the update.
    pub transition: f64,
    /// The remainder after the transition window.
    pub recovered: f64,
}

/// Everything the experiment measures.
pub struct OnlineDriftResult {
    /// Fit once pre-update, never refit.
    pub frozen: SegmentedMae,
    /// Sliding-window online learner.
    pub window: SegmentedMae,
    /// Page–Hinkley guarded learner.
    pub drift_aware: SegmentedMae,
    /// Stream offset (samples after the update) at which drift was
    /// detected, if it was.
    pub detected_after: Option<usize>,
    /// Samples per segment actually scored (pre / transition /
    /// recovered).
    pub segment_sizes: (usize, usize, usize),
}

/// Transition window length, samples.
const TRANSITION: usize = 300;

/// Runs the experiment: one simulation with a mid-run fleet-wide memory
/// regression, then three predictors evaluated prequentially on the
/// captured stream.
pub fn run(cfg: &OnlineDriftConfig) -> OnlineDriftResult {
    // ---------------- Generate the stream ----------------
    let update_at = cfg.update_at();
    let mut builder = ScenarioBuilder::paper_intra_dc()
        .vms(cfg.vms)
        .load_scale(cfg.load_scale)
        .seed(cfg.seed);
    let bloated = |p: VmPerfProfile| VmPerfProfile {
        base_mem_mb: p.base_mem_mb * 1.8,
        mem_mb_per_inflight: p.mem_mb_per_inflight * 2.5,
        ..p
    };
    // The scenario builder assigns per-class profiles at build time; we
    // can only know them post-build, so build once to read them, then
    // schedule the bloat per VM.
    let probe = builder.clone().build();
    for vm in 0..cfg.vms {
        builder = builder.profile_change(vm, update_at, bloated(probe.perf_profiles[vm]));
    }
    let scenario = builder.build();

    // Static placement, no migrations: every tick records exactly one
    // sample per VM, so the stream boundary is exact.
    let policy = Box::new(crate::policy::StaticPolicy(
        pamdc_sched::oracle::TrueOracle::new(),
    ));
    let (_, collector) = SimulationRunner::new(scenario, policy)
        .config(RunConfig {
            keep_series: false,
            round_every_ticks: 0,
            ..Default::default()
        })
        .collect_into(TrainingCollector::new())
        .run(SimDuration::from_hours(cfg.hours));
    let collector = collector.expect("collector attached");

    let boundary = update_at.as_mins() as usize * cfg.vms;
    let stream: Vec<(Vec<f64>, f64)> = collector
        .vm_ticks
        .iter()
        .map(|s| (s.load.to_vec(), s.observed.mem_mb))
        .collect();
    assert!(
        stream.len() > boundary + TRANSITION,
        "stream too short: {} samples, boundary {}",
        stream.len(),
        boundary
    );

    // ---------------- The three contenders ----------------
    let features: Vec<&str> = vec!["rps", "kb_in", "kb_out", "cpu_ms", "backlog"];
    let mut pretrain = Dataset::new(features.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    for (x, y) in &stream[..boundary] {
        pretrain.push(x.clone(), *y);
    }
    let frozen_model = LinearRegression::fit(&pretrain);

    let fit = |d: &Dataset| Box::new(LinearRegression::fit(d)) as Box<dyn Regressor>;
    let mut window_model =
        OnlineLearner::new(&features, cfg.window, cfg.refit_every, cfg.refit_every, fit);
    let mut aware_model = DriftAwareLearner::new(
        OnlineLearner::new(&features, cfg.window, cfg.refit_every, cfg.refit_every, fit),
        PageHinkley::new(cfg.ph_delta, cfg.ph_lambda),
    );

    // ---------------- Prequential evaluation ----------------
    let mut sums = [[0.0f64; 3]; 3]; // [model][segment]
    let mut counts = [[0usize; 3]; 3];
    let mut detected_after = None;
    for (i, (x, y)) in stream.iter().enumerate() {
        let segment = if i < boundary {
            0
        } else if i < boundary + TRANSITION {
            1
        } else {
            2
        };
        // Score (skip models that have not fit yet — only the first
        // refit_every samples of the run).
        let preds = [
            Some(frozen_model.predict(x)),
            window_model.predict(x),
            aware_model.predict(x),
        ];
        for (m, pred) in preds.into_iter().enumerate() {
            if let Some(p) = pred {
                sums[m][segment] += (p - y).abs();
                counts[m][segment] += 1;
            }
        }
        // Learn.
        window_model.observe(x.clone(), *y);
        if aware_model.observe(x.clone(), *y) && detected_after.is_none() {
            detected_after = Some(i.saturating_sub(boundary));
        }
    }

    let mae = |m: usize| SegmentedMae {
        pre: sums[m][0] / counts[m][0].max(1) as f64,
        transition: sums[m][1] / counts[m][1].max(1) as f64,
        recovered: sums[m][2] / counts[m][2].max(1) as f64,
    };
    OnlineDriftResult {
        frozen: mae(0),
        window: mae(1),
        drift_aware: mae(2),
        detected_after,
        segment_sizes: (counts[0][0], counts[0][1], counts[0][2]),
    }
}

/// The registry-facing experiment: the prequential stream needs a
/// collector-attached simulation, so everything runs in the emission
/// stage rather than through shared arms.
pub struct OnlineDrift {
    /// Stream and learner configuration.
    pub cfg: OnlineDriftConfig,
}

impl Experiment for OnlineDrift {
    fn emit(&self, _run: ExperimentRun) -> ExperimentReport {
        let result = run(&self.cfg);
        let mut metrics = Vec::new();
        for (label, m) in [
            ("frozen", &result.frozen),
            ("window", &result.window),
            ("drift_aware", &result.drift_aware),
        ] {
            metrics.push((format!("{label}_mae_pre"), m.pre));
            metrics.push((format!("{label}_mae_transition"), m.transition));
            metrics.push((format!("{label}_mae_recovered"), m.recovered));
        }
        metrics.push((
            "detected_after_samples".to_string(),
            result.detected_after.map(|k| k as f64).unwrap_or(-1.0),
        ));
        ExperimentReport {
            text: render(&result),
            metrics,
        }
    }
}

/// Renders the MAE table.
pub fn render(result: &OnlineDriftResult) -> String {
    let mut t = TextTable::new(&["model", "MAE pre (MB)", "MAE transition", "MAE recovered"]);
    for (label, m) in [
        ("Frozen (Table-I regime)", &result.frozen),
        ("Sliding window", &result.window),
        ("Drift-aware (Page-Hinkley)", &result.drift_aware),
    ] {
        t.row(vec![
            label.to_string(),
            format!("{:.1}", m.pre),
            format!("{:.1}", m.transition),
            format!("{:.1}", m.recovered),
        ]);
    }
    let detection = match result.detected_after {
        Some(k) => format!("drift detected {k} samples after the update"),
        None => "drift NOT detected".to_string(),
    };
    format!(
        "On-line learning under a software update (future work 4) — {detection}\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_models_survive_the_update() {
        let r = run(&OnlineDriftConfig::quick(5));
        // Pre-update: all models comparable (within 3x of each other).
        assert!(r.frozen.pre < r.window.pre * 3.0 + 5.0);
        // The update hurts the frozen model lastingly.
        assert!(
            r.frozen.recovered > r.frozen.pre * 3.0,
            "frozen model must degrade: pre {} vs recovered {}",
            r.frozen.pre,
            r.frozen.recovered
        );
        // Online models recover to near their pre-update error.
        assert!(
            r.window.recovered < r.frozen.recovered * 0.5,
            "window {} must beat frozen {}",
            r.window.recovered,
            r.frozen.recovered
        );
        assert!(
            r.drift_aware.recovered < r.frozen.recovered * 0.5,
            "drift-aware {} must beat frozen {}",
            r.drift_aware.recovered,
            r.frozen.recovered
        );
        // Detection fired, and quickly.
        let k = r.detected_after.expect("Page-Hinkley must fire");
        assert!(k < TRANSITION, "detection after {k} samples is too slow");
        let rendered = render(&r);
        assert!(rendered.contains("drift detected"));
    }
}
