//! E-PA — **price adaptation**, the result the paper mentions but does
//! not report (§V-B): *"these ML-augmented versions can automatically
//! adapt to changes in task execution prices, SLA penalties, and power
//! price … Adapting the ad-hoc algorithms to these changes requires
//! expert (human) intervention"*.
//!
//! Here the cheapest DC (Boston, 0.1120 €/kWh) suffers a 4× tariff spike
//! halfway through the run — a market event, not a topology change. Two
//! arms run the identical hierarchical scheduler:
//!
//! * **adaptive** — quoted the live tariff each round; the profit
//!   function re-consolidates away from Boston on its own.
//! * **posted-price** — quoted only the original posted prices (the
//!   "ad-hoc configuration" a human would have to re-tune); it keeps
//!   favouring Boston and pays the spike.
//!
//! Both arms are billed the true (spiked) tariff. Expected shape: the
//! adaptive arm's Boston occupancy drops after the spike and its energy
//! bill undercuts the posted-price arm's.

use crate::experiment::{self, Arm, Experiment, ExperimentReport, ExperimentRun};
use crate::policy::HierarchicalPolicy;
use crate::report::TextTable;
use crate::scenario::{Scenario, ScenarioBuilder};
use crate::simulation::{RunConfig, RunOutcome};
use pamdc_green::tariff::Tariff;
use pamdc_sched::oracle::TrueOracle;
use pamdc_simcore::time::SimTime;

/// Boston's index among the paper DCs.
const BOSTON: usize = 3;

/// Configuration of the price-shock experiment.
#[derive(Clone, Debug)]
pub struct PriceAdaptationConfig {
    /// Simulated hours; the spike lands at the midpoint.
    pub hours: u64,
    /// VMs.
    pub vms: usize,
    /// Hosts per DC.
    pub pms_per_dc: usize,
    /// Multiplier applied to Boston's tariff at the midpoint.
    pub spike_factor: f64,
    /// Load multiplier.
    pub load_scale: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for PriceAdaptationConfig {
    fn default() -> Self {
        PriceAdaptationConfig {
            hours: 24,
            vms: 4,
            pms_per_dc: 2,
            spike_factor: 4.0,
            load_scale: 0.7,
            seed: 17,
        }
    }
}

impl PriceAdaptationConfig {
    /// Short run for tests and benches.
    pub fn quick(seed: u64) -> Self {
        PriceAdaptationConfig {
            hours: 12,
            vms: 3,
            ..PriceAdaptationConfig {
                seed,
                ..Default::default()
            }
        }
    }

    /// The spike instant.
    pub fn spike_at(&self) -> SimTime {
        SimTime::from_hours(self.hours / 2)
    }
}

/// One arm's outcome plus its Boston occupancy after the spike.
pub struct ArmResult {
    /// The run.
    pub outcome: RunOutcome,
    /// Fraction of VM-ticks hosted in Boston after the spike.
    pub boston_share_post: f64,
    /// Fraction of VM-ticks hosted in Boston before the spike.
    pub boston_share_pre: f64,
}

/// Both arms.
pub struct PriceAdaptationResult {
    /// Sees live tariffs.
    pub adaptive: ArmResult,
    /// Sees only posted prices.
    pub posted: ArmResult,
    /// When the spike landed.
    pub spike_at: SimTime,
}

fn boston_share(outcome: &RunOutcome, vms: usize, spike_at: SimTime, post: bool) -> f64 {
    let mut in_boston = 0usize;
    let mut total = 0usize;
    for vm in 0..vms {
        let Some(series) = outcome.series.get(&format!("vm{vm}_dc")) else {
            continue;
        };
        for (t, dc) in series.iter() {
            if (t >= spike_at) == post {
                total += 1;
                if dc as usize == BOSTON {
                    in_boston += 1;
                }
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        in_boston as f64 / total as f64
    }
}

/// Builds one arm's world.
///
/// The fleet starts consolidated in Boston — the rational placement
/// under the posted prices (it is the cheapest DC). The workload is
/// latency-neutral (equal load from all regions), so the energy term
/// alone decides where the fleet lives — exactly the regime the paper
/// predicts for "larger variations of energy prices across the world".
fn build(cfg: &PriceAdaptationConfig, adaptive: bool) -> Scenario {
    let spike_factor = cfg.spike_factor;
    let spike_at = cfg.spike_at();
    ScenarioBuilder::paper_multi_dc()
        .vms(cfg.vms)
        .pms_per_dc(cfg.pms_per_dc)
        .load_scale(cfg.load_scale)
        .deploy_all_in(BOSTON)
        .seed(cfg.seed)
        .name(if adaptive {
            "adaptive-pricing"
        } else {
            "posted-pricing"
        })
        .workload(pamdc_workload::libcn::uniform_multi_dc(
            cfg.vms,
            170.0 * cfg.load_scale,
            cfg.seed,
        ))
        .energy(move |_, env| {
            let base = pamdc_econ::prices::paper_prices()[BOSTON].eur_per_kwh;
            let env = env.with_tariff(
                BOSTON,
                Tariff::Step {
                    initial_eur: base,
                    steps: vec![(spike_at, base * spike_factor)],
                },
            );
            if adaptive {
                env
            } else {
                env.price_blind()
            }
        })
        .build()
}

/// Stage 2: the adaptive and posted-price arms. A one-hour planning
/// horizon: fleeing a 4x tariff must pay for the migration out of more
/// than ten minutes of savings.
fn arms(cfg: &PriceAdaptationConfig) -> Vec<Arm> {
    let run_cfg = RunConfig {
        plan_horizon_ticks: Some(60),
        ..RunConfig::default()
    };
    [("adaptive", true), ("posted", false)]
        .into_iter()
        .map(|(label, adaptive)| {
            Arm::new(
                label,
                build(cfg, adaptive),
                Box::new(HierarchicalPolicy::new(TrueOracle::new())),
                cfg.hours,
            )
            .config(run_cfg.clone())
        })
        .collect()
}

/// Stage 4: wraps an outcome with its Boston-occupancy statistics.
fn arm_result(cfg: &PriceAdaptationConfig, outcome: RunOutcome) -> ArmResult {
    let spike_at = cfg.spike_at();
    ArmResult {
        boston_share_pre: boston_share(&outcome, cfg.vms, spike_at, false),
        boston_share_post: boston_share(&outcome, cfg.vms, spike_at, true),
        outcome,
    }
}

/// Runs both arms in parallel.
pub fn run(cfg: &PriceAdaptationConfig) -> PriceAdaptationResult {
    let mut outcomes = experiment::execute(arms(cfg)).into_iter();
    PriceAdaptationResult {
        adaptive: arm_result(cfg, outcomes.next().expect("adaptive arm").1),
        posted: arm_result(cfg, outcomes.next().expect("posted arm").1),
        spike_at: cfg.spike_at(),
    }
}

/// The registry-facing experiment.
pub struct PriceAdaptation {
    /// Arm configuration.
    pub cfg: PriceAdaptationConfig,
}

impl Experiment for PriceAdaptation {
    fn arms(&mut self, _training: Option<&crate::training::TrainingOutcome>) -> Vec<Arm> {
        arms(&self.cfg)
    }

    fn emit(&self, run: ExperimentRun) -> ExperimentReport {
        let mut metrics = run.arm_metrics();
        let mut outcomes = run.into_outcomes().into_iter();
        let result = PriceAdaptationResult {
            adaptive: arm_result(&self.cfg, outcomes.next().expect("adaptive arm")),
            posted: arm_result(&self.cfg, outcomes.next().expect("posted arm")),
            spike_at: self.cfg.spike_at(),
        };
        for (label, arm) in [("adaptive", &result.adaptive), ("posted", &result.posted)] {
            metrics.push((format!("{label}_boston_share_pre"), arm.boston_share_pre));
            metrics.push((format!("{label}_boston_share_post"), arm.boston_share_post));
        }
        ExperimentReport {
            text: render(&result),
            metrics,
        }
    }
}

/// Renders the comparison.
pub fn render(result: &PriceAdaptationResult) -> String {
    let mut t = TextTable::new(&[
        "scenario",
        "BST share pre",
        "BST share post",
        "energy €",
        "€/h",
        "Avg SLA",
        "migrations",
    ]);
    for (label, arm) in [
        ("Adaptive", &result.adaptive),
        ("Posted-price", &result.posted),
    ] {
        t.row(vec![
            label.to_string(),
            format!("{:.2}", arm.boston_share_pre),
            format!("{:.2}", arm.boston_share_post),
            format!("{:.4}", arm.outcome.profit.energy_eur),
            format!("{:.4}", arm.outcome.eur_per_hour()),
            format!("{:.4}", arm.outcome.mean_sla),
            arm.outcome.migrations.to_string(),
        ]);
    }
    format!(
        "Price adaptation (§V-B unreported result) — Boston tariff spikes at {}\n{}",
        result.spike_at,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_arm_flees_the_spiked_tariff() {
        let result = run(&PriceAdaptationConfig::quick(7));
        // The adaptive arm must hold less of its fleet in Boston after
        // the spike than the posted-price arm does.
        assert!(
            result.adaptive.boston_share_post < result.posted.boston_share_post,
            "adaptive {} vs posted {}",
            result.adaptive.boston_share_post,
            result.posted.boston_share_post
        );
        // And its electricity bill must be no worse.
        assert!(
            result.adaptive.outcome.profit.energy_eur
                <= result.posted.outcome.profit.energy_eur + 1e-9,
            "adaptive energy {} vs posted {}",
            result.adaptive.outcome.profit.energy_eur,
            result.posted.outcome.profit.energy_eur
        );
        let rendered = render(&result);
        assert!(rendered.contains("Adaptive"));
    }
}
