//! E-SC2 — **scheduling-round scalability** (paper future-work item 1):
//! *"how we decide which VMs are excluded from inter-DC scheduling or
//! which PMs are offered as host candidates …; this affecting directly
//! to scalability of the method; and provide information about how many
//! PMs/VMs we can manage per scheduling round"*.
//!
//! A size sweep over synthetic rounds compares the flat single-layer
//! Best-Fit (every VM scored against every host) with the hierarchical
//! two-layer round (intra-DC passes plus a narrow global interface that
//! only escalates VMs that might benefit from moving and only offers a
//! bounded set of candidate hosts). Each cell reports wall-clock solve
//! time and the profit of the resulting schedule under the true oracle,
//! so the answer to "how many VMs/PMs per round?" comes with the price
//! paid in solution quality (expected: none to speak of).

use crate::experiment::{Experiment, ExperimentReport, ExperimentRun};
use crate::report::TextTable;
use pamdc_obs::clock::Stopwatch;
use pamdc_sched::bestfit::best_fit;
use pamdc_sched::hierarchical::{hierarchical_round, HierarchicalConfig};
use pamdc_sched::oracle::TrueOracle;
use pamdc_sched::problem::synthetic;
use pamdc_sched::profit::evaluate_schedule;

/// One sweep cell.
#[derive(Clone, Debug)]
pub struct ScalingCell {
    /// VMs in the round.
    pub vms: usize,
    /// Candidate hosts in the round.
    pub hosts: usize,
    /// Flat Best-Fit wall time, microseconds.
    pub flat_us: f64,
    /// Hierarchical round wall time, microseconds.
    pub hier_us: f64,
    /// Flat schedule profit, €.
    pub flat_profit: f64,
    /// Hierarchical schedule profit, €.
    pub hier_profit: f64,
    /// VMs the hierarchical filter escalated to the global pass.
    pub escalated_vms: usize,
    /// Hosts the hierarchical filter offered globally.
    pub offered_hosts: usize,
}

/// Configuration of the sweep.
#[derive(Clone, Debug)]
pub struct ScalingConfig {
    /// `(vms, hosts)` sizes to test.
    pub sizes: Vec<(usize, usize)>,
    /// Offered load per VM, requests/second.
    pub rps: f64,
    /// Timing repetitions per cell (median taken).
    pub reps: usize,
}

impl Default for ScalingConfig {
    fn default() -> Self {
        ScalingConfig {
            sizes: vec![
                (10, 8),
                (20, 16),
                (40, 32),
                (80, 64),
                (160, 128),
                (320, 256),
            ],
            rps: 60.0,
            reps: 5,
        }
    }
}

impl ScalingConfig {
    /// Small sweep for tests.
    pub fn quick() -> Self {
        ScalingConfig {
            sizes: vec![(10, 8), (40, 32)],
            rps: 60.0,
            reps: 2,
        }
    }
}

fn median_us(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Runs the sweep (sequentially — the cells are timing-sensitive).
pub fn run(cfg: &ScalingConfig) -> Vec<ScalingCell> {
    let oracle = TrueOracle::new();
    let hier_cfg = HierarchicalConfig::default();
    cfg.sizes
        .iter()
        .map(|&(vms, hosts)| {
            let problem = synthetic::problem(vms, hosts, cfg.rps);

            let mut flat_times = Vec::with_capacity(cfg.reps);
            let mut flat_schedule = None;
            for _ in 0..cfg.reps {
                let t0 = Stopwatch::start();
                let result = best_fit(&problem, &oracle);
                flat_times.push(t0.elapsed_us());
                flat_schedule = Some(result.schedule);
            }
            let mut hier_times = Vec::with_capacity(cfg.reps);
            let mut hier_out = None;
            for _ in 0..cfg.reps {
                let t0 = Stopwatch::start();
                let out = hierarchical_round(&problem, &oracle, &hier_cfg);
                hier_times.push(t0.elapsed_us());
                hier_out = Some(out);
            }

            let flat_schedule = flat_schedule.expect("reps >= 1");
            let (hier_schedule, stats) = hier_out.expect("reps >= 1");
            ScalingCell {
                vms,
                hosts,
                flat_us: median_us(flat_times),
                hier_us: median_us(hier_times),
                flat_profit: evaluate_schedule(&problem, &oracle, &flat_schedule).profit_eur,
                hier_profit: evaluate_schedule(&problem, &oracle, &hier_schedule).profit_eur,
                escalated_vms: stats.global_vms,
                offered_hosts: stats.offered_hosts,
            }
        })
        .collect()
}

/// The registry-facing experiment: a wall-clock timing study (runs in
/// the emission stage; reports are *not* run-to-run deterministic, so
/// the kind registry excludes it from golden snapshots).
pub struct Scaling {
    /// Sweep configuration.
    pub cfg: ScalingConfig,
}

impl Experiment for Scaling {
    fn emit(&self, _run: ExperimentRun) -> ExperimentReport {
        let cells = run(&self.cfg);
        let mut metrics = Vec::new();
        for c in &cells {
            let key = |k: &str| format!("{}x{}_{k}", c.vms, c.hosts);
            metrics.push((key("flat_us"), c.flat_us));
            metrics.push((key("hier_us"), c.hier_us));
            metrics.push((key("flat_profit"), c.flat_profit));
            metrics.push((key("hier_profit"), c.hier_profit));
            metrics.push((key("escalated_vms"), c.escalated_vms as f64));
            metrics.push((key("offered_hosts"), c.offered_hosts as f64));
        }
        ExperimentReport {
            text: render(&cells),
            metrics,
        }
    }
}

/// Renders the sweep table.
pub fn render(cells: &[ScalingCell]) -> String {
    let mut t = TextTable::new(&[
        "VMs",
        "hosts",
        "flat µs",
        "hier µs",
        "flat €",
        "hier €",
        "escalated",
        "offered",
    ]);
    for c in cells {
        t.row(vec![
            c.vms.to_string(),
            c.hosts.to_string(),
            format!("{:.0}", c.flat_us),
            format!("{:.0}", c.hier_us),
            format!("{:.4}", c.flat_profit),
            format!("{:.4}", c.hier_profit),
            c.escalated_vms.to_string(),
            c.offered_hosts.to_string(),
        ]);
    }
    format!(
        "Scheduling-round scalability (future work 1)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_sane_cells() {
        let cells = run(&ScalingConfig::quick());
        assert_eq!(cells.len(), 2);
        for c in &cells {
            assert!(c.flat_us > 0.0 && c.hier_us > 0.0);
            assert!(c.flat_profit.is_finite() && c.hier_profit.is_finite());
            // The narrow interface must actually narrow: never escalate
            // more VMs than exist, never offer more hosts than exist.
            assert!(c.escalated_vms <= c.vms);
            assert!(c.offered_hosts <= c.hosts);
            // Quality must not collapse: the hierarchical schedule keeps
            // at least 80% of flat profit (they usually tie or beat).
            assert!(
                c.hier_profit > c.flat_profit - c.flat_profit.abs() * 0.2 - 0.01,
                "hier {} vs flat {} at {}x{}",
                c.hier_profit,
                c.flat_profit,
                c.vms,
                c.hosts
            );
        }
        let rendered = render(&cells);
        assert!(rendered.contains("escalated"));
    }
}
