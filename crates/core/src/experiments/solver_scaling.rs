//! E-SC — §IV-C's motivation for the heuristic: exact solving blows up.
//!
//! The paper reports GUROBI needing "several minutes to schedule 10 jobs
//! among 40 candidate hosts" while Best-Fit answers instantly. This
//! driver measures both solvers over growing instances — wall time and,
//! for the exact solver, search nodes — reproducing the scaling gap that
//! justifies Algorithm 1.

use crate::experiment::{Experiment, ExperimentReport, ExperimentRun};
use crate::report::TextTable;
use pamdc_obs::clock::Stopwatch;
use pamdc_sched::bestfit::best_fit;
use pamdc_sched::exact::{branch_and_bound_with_budget, ExactOutcome};
use pamdc_sched::oracle::TrueOracle;
use pamdc_sched::problem::synthetic;

/// One measured instance size.
#[derive(Clone, Copy, Debug)]
pub struct ScalingPoint {
    /// VMs in the instance.
    pub vms: usize,
    /// Candidate hosts.
    pub hosts: usize,
    /// Best-Fit wall time, microseconds.
    pub bestfit_us: f64,
    /// Exact solver wall time, microseconds (`None` when skipped).
    pub exact_us: Option<f64>,
    /// Exact solver nodes expanded.
    pub exact_nodes: Option<u64>,
    /// Profit gap: `(exact - heuristic) / |exact|`, when both ran.
    pub profit_gap: Option<f64>,
    /// The exact solver hit its node budget; its numbers describe the
    /// truncated search, not a proven optimum.
    pub exact_budget_exhausted: bool,
}

/// Configuration of the scaling study.
#[derive(Clone, Debug)]
pub struct ScalingConfig {
    /// `(vms, hosts)` instance sizes, ascending.
    pub sizes: Vec<(usize, usize)>,
    /// Skip the exact solver above this VM count (it explodes —
    /// that is the point, but benches must terminate).
    pub exact_vm_cap: usize,
    /// Per-VM request rate of the synthetic instances.
    pub rps: f64,
    /// Hard cap on exact-solver search nodes per instance. The solver
    /// is exponential; without a ceiling one oversized entry in `sizes`
    /// hangs the whole study. Exhaustion is reported per point rather
    /// than silently passing off the incumbent as optimal.
    pub exact_node_budget: u64,
}

impl Default for ScalingConfig {
    fn default() -> Self {
        ScalingConfig {
            sizes: vec![(2, 4), (4, 8), (6, 12), (8, 24), (10, 40)],
            exact_vm_cap: 8,
            rps: 250.0,
            exact_node_budget: 10_000_000,
        }
    }
}

impl ScalingConfig {
    /// Tiny study for tests.
    pub fn quick() -> Self {
        ScalingConfig {
            sizes: vec![(2, 4), (5, 6)],
            exact_vm_cap: 5,
            rps: 250.0,
            exact_node_budget: 1_000_000,
        }
    }
}

/// Runs the study.
pub fn run(cfg: &ScalingConfig) -> Vec<ScalingPoint> {
    let oracle = TrueOracle::new();
    cfg.sizes
        .iter()
        .map(|&(vms, hosts)| {
            let problem = synthetic::problem(vms, hosts, cfg.rps);

            let t0 = Stopwatch::start();
            let heur = best_fit(&problem, &oracle);
            let bestfit_us = t0.elapsed_us();
            let heur_profit =
                pamdc_sched::profit::evaluate_schedule(&problem, &oracle, &heur.schedule)
                    .profit_eur;

            let (exact_us, exact_nodes, profit_gap, exact_budget_exhausted) =
                if vms <= cfg.exact_vm_cap {
                    let t0 = Stopwatch::start();
                    let outcome =
                        branch_and_bound_with_budget(&problem, &oracle, cfg.exact_node_budget);
                    let us = t0.elapsed_us();
                    let gap_of = |profit: f64| {
                        if profit.abs() > 1e-12 {
                            (profit - heur_profit) / profit.abs()
                        } else {
                            0.0
                        }
                    };
                    match outcome {
                        ExactOutcome::Optimal(exact) => (
                            Some(us),
                            Some(exact.nodes_expanded),
                            Some(gap_of(exact.eval.profit_eur)),
                            false,
                        ),
                        ExactOutcome::BudgetExhausted {
                            nodes_expanded,
                            incumbent,
                        } => (
                            Some(us),
                            Some(nodes_expanded),
                            incumbent.map(|inc| gap_of(inc.eval.profit_eur)),
                            true,
                        ),
                    }
                } else {
                    (None, None, None, false)
                };

            ScalingPoint {
                vms,
                hosts,
                bestfit_us,
                exact_us,
                exact_nodes,
                profit_gap,
                exact_budget_exhausted,
            }
        })
        .collect()
}

/// The registry-facing experiment: a wall-clock timing study (runs in
/// the emission stage; reports are *not* run-to-run deterministic, so
/// the kind registry excludes it from golden snapshots).
pub struct SolverScaling {
    /// Study configuration.
    pub cfg: ScalingConfig,
}

impl Experiment for SolverScaling {
    fn emit(&self, _run: ExperimentRun) -> ExperimentReport {
        let points = run(&self.cfg);
        let mut metrics = Vec::new();
        for p in &points {
            let key = |k: &str| format!("{}x{}_{k}", p.vms, p.hosts);
            metrics.push((key("bestfit_us"), p.bestfit_us));
            if let Some(us) = p.exact_us {
                metrics.push((key("exact_us"), us));
            }
            if let Some(n) = p.exact_nodes {
                metrics.push((key("exact_nodes"), n as f64));
            }
            if let Some(gap) = p.profit_gap {
                metrics.push((key("profit_gap"), gap));
            }
            if p.exact_budget_exhausted {
                metrics.push((key("exact_budget_exhausted"), 1.0));
            }
        }
        ExperimentReport {
            text: render(&points),
            metrics,
        }
    }
}

/// Renders the study.
pub fn render(points: &[ScalingPoint]) -> String {
    let mut t = TextTable::new(&[
        "VMs",
        "hosts",
        "best-fit µs",
        "exact µs",
        "exact nodes",
        "profit gap",
    ]);
    for p in points {
        t.row(vec![
            p.vms.to_string(),
            p.hosts.to_string(),
            format!("{:.0}", p.bestfit_us),
            p.exact_us
                .map(|v| format!("{v:.0}"))
                .unwrap_or_else(|| "(skipped)".into()),
            match (p.exact_nodes, p.exact_budget_exhausted) {
                (Some(v), false) => v.to_string(),
                (Some(v), true) => format!("{v} (budget!)"),
                (None, _) => "-".into(),
            },
            p.profit_gap
                .map(|v| format!("{v:.4}"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    format!(
        "Solver scaling — exact B&B vs Descending Best-Fit\n{}",
        t.render()
    )
}
