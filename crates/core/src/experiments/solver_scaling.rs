//! E-SC — §IV-C's motivation for the heuristic: exact solving blows up.
//!
//! The paper reports GUROBI needing "several minutes to schedule 10 jobs
//! among 40 candidate hosts" while Best-Fit answers instantly. This
//! driver measures both solvers over growing instances — wall time and,
//! for the exact solver, search nodes — reproducing the scaling gap that
//! justifies Algorithm 1.

use crate::experiment::{Experiment, ExperimentReport, ExperimentRun};
use crate::report::TextTable;
use pamdc_sched::bestfit::best_fit;
use pamdc_sched::exact::branch_and_bound;
use pamdc_sched::oracle::TrueOracle;
use pamdc_sched::problem::synthetic;
use std::time::Instant;

/// One measured instance size.
#[derive(Clone, Copy, Debug)]
pub struct ScalingPoint {
    /// VMs in the instance.
    pub vms: usize,
    /// Candidate hosts.
    pub hosts: usize,
    /// Best-Fit wall time, microseconds.
    pub bestfit_us: f64,
    /// Exact solver wall time, microseconds (`None` when skipped).
    pub exact_us: Option<f64>,
    /// Exact solver nodes expanded.
    pub exact_nodes: Option<u64>,
    /// Profit gap: `(exact - heuristic) / |exact|`, when both ran.
    pub profit_gap: Option<f64>,
}

/// Configuration of the scaling study.
#[derive(Clone, Debug)]
pub struct ScalingConfig {
    /// `(vms, hosts)` instance sizes, ascending.
    pub sizes: Vec<(usize, usize)>,
    /// Skip the exact solver above this VM count (it explodes —
    /// that is the point, but benches must terminate).
    pub exact_vm_cap: usize,
    /// Per-VM request rate of the synthetic instances.
    pub rps: f64,
}

impl Default for ScalingConfig {
    fn default() -> Self {
        ScalingConfig {
            sizes: vec![(2, 4), (4, 8), (6, 12), (8, 24), (10, 40)],
            exact_vm_cap: 8,
            rps: 250.0,
        }
    }
}

impl ScalingConfig {
    /// Tiny study for tests.
    pub fn quick() -> Self {
        ScalingConfig {
            sizes: vec![(2, 4), (5, 6)],
            exact_vm_cap: 5,
            rps: 250.0,
        }
    }
}

/// Runs the study.
pub fn run(cfg: &ScalingConfig) -> Vec<ScalingPoint> {
    let oracle = TrueOracle::new();
    cfg.sizes
        .iter()
        .map(|&(vms, hosts)| {
            let problem = synthetic::problem(vms, hosts, cfg.rps);

            let t0 = Instant::now();
            let heur = best_fit(&problem, &oracle);
            let bestfit_us = t0.elapsed().as_secs_f64() * 1e6;
            let heur_profit =
                pamdc_sched::profit::evaluate_schedule(&problem, &oracle, &heur.schedule)
                    .profit_eur;

            let (exact_us, exact_nodes, profit_gap) = if vms <= cfg.exact_vm_cap {
                let t0 = Instant::now();
                let exact = branch_and_bound(&problem, &oracle);
                let us = t0.elapsed().as_secs_f64() * 1e6;
                let gap = if exact.eval.profit_eur.abs() > 1e-12 {
                    (exact.eval.profit_eur - heur_profit) / exact.eval.profit_eur.abs()
                } else {
                    0.0
                };
                (Some(us), Some(exact.nodes_expanded), Some(gap))
            } else {
                (None, None, None)
            };

            ScalingPoint {
                vms,
                hosts,
                bestfit_us,
                exact_us,
                exact_nodes,
                profit_gap,
            }
        })
        .collect()
}

/// The registry-facing experiment: a wall-clock timing study (runs in
/// the emission stage; reports are *not* run-to-run deterministic, so
/// the kind registry excludes it from golden snapshots).
pub struct SolverScaling {
    /// Study configuration.
    pub cfg: ScalingConfig,
}

impl Experiment for SolverScaling {
    fn emit(&self, _run: ExperimentRun) -> ExperimentReport {
        let points = run(&self.cfg);
        let mut metrics = Vec::new();
        for p in &points {
            let key = |k: &str| format!("{}x{}_{k}", p.vms, p.hosts);
            metrics.push((key("bestfit_us"), p.bestfit_us));
            if let Some(us) = p.exact_us {
                metrics.push((key("exact_us"), us));
            }
            if let Some(n) = p.exact_nodes {
                metrics.push((key("exact_nodes"), n as f64));
            }
            if let Some(gap) = p.profit_gap {
                metrics.push((key("profit_gap"), gap));
            }
        }
        ExperimentReport {
            text: render(&points),
            metrics,
        }
    }
}

/// Renders the study.
pub fn render(points: &[ScalingPoint]) -> String {
    let mut t = TextTable::new(&[
        "VMs",
        "hosts",
        "best-fit µs",
        "exact µs",
        "exact nodes",
        "profit gap",
    ]);
    for p in points {
        t.row(vec![
            p.vms.to_string(),
            p.hosts.to_string(),
            format!("{:.0}", p.bestfit_us),
            p.exact_us
                .map(|v| format!("{v:.0}"))
                .unwrap_or_else(|| "(skipped)".into()),
            p.exact_nodes
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".into()),
            p.profit_gap
                .map(|v| format!("{v:.4}"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    format!(
        "Solver scaling — exact B&B vs Descending Best-Fit\n{}",
        t.render()
    )
}
