//! E-GR — the **follow-the-sun extension** (paper future-work item 3).
//!
//! §II of the paper: *"a 'follow the sun/wind' policy could also be
//! introduced easily into the energy cost computation"*. This experiment
//! verifies that claim end-to-end: two DCs on roughly opposite sides of
//! the planet (Brisbane and Barcelona, nine timezones apart) get on-site
//! solar sized to carry the whole fleet, and the only change to the
//! scheduler is the €/kWh it is quoted — the marginal price collapses
//! toward zero wherever the sun currently shines. The workload is
//! latency-neutral (equal client weight from all regions), so the energy
//! term alone decides placement. Two arms:
//!
//! * **sun-aware** — the hierarchical scheduler sees the time-varying
//!   marginal price, so the profit function drags VMs around the planet
//!   chasing daylight (subject to SLA and migration costs).
//! * **price-blind** — the same scheduler sees only the posted Table II
//!   prices; production still offsets whatever happens to run locally,
//!   but nothing chases it.
//!
//! Expected shape: the sun-aware arm serves a clearly larger fraction of
//! its energy green, emits less CO₂ and pays less for electricity, at
//! equal-or-better SLA — with the migrations to show for it.

use crate::experiment::{self, Arm, Experiment, ExperimentReport, ExperimentRun};
use crate::policy::HierarchicalPolicy;
use crate::report::TextTable;
use crate::scenario::{Scenario, ScenarioBuilder};
use crate::simulation::{RunConfig, RunOutcome};
use pamdc_sched::oracle::TrueOracle;

/// Energy-chasing needs to amortize a migration over more than one
/// 10-minute round: a ~10 s blackout buys hours of sun. One hour of
/// planning horizon makes the trade visible to the profit function.
const PLAN_HORIZON_TICKS: u64 = 60;

/// Configuration of the follow-the-sun experiment.
#[derive(Clone, Debug)]
pub struct GreenConfig {
    /// Simulated hours (≥ 24 to see a full planetary rotation).
    pub hours: u64,
    /// VMs.
    pub vms: usize,
    /// Hosts per DC.
    pub pms_per_dc: usize,
    /// Which DCs get solar (default: Brisbane and Barcelona — nearly
    /// antipodal, so one of them is usually in daylight).
    pub solar_dcs: Vec<usize>,
    /// Solar nameplate per host, watts (sized so one sunny DC can cover
    /// a consolidated fleet).
    pub solar_per_pm_w: f64,
    /// Worst-day cloud attenuation in `[0, 1]`.
    pub min_sky: f64,
    /// Load multiplier.
    pub load_scale: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for GreenConfig {
    fn default() -> Self {
        GreenConfig {
            hours: 48,
            vms: 4,
            pms_per_dc: 2,
            solar_dcs: vec![0, 2],
            solar_per_pm_w: 150.0,
            min_sky: 0.7,
            load_scale: 0.7,
            seed: 11,
        }
    }
}

impl GreenConfig {
    /// Short run for tests and benches.
    pub fn quick(seed: u64) -> Self {
        GreenConfig {
            hours: 24,
            vms: 3,
            ..GreenConfig {
                seed,
                ..Default::default()
            }
        }
    }
}

/// Both arms of the experiment.
pub struct GreenResult {
    /// Scheduler chases the marginal (green-discounted) price.
    pub sun_aware: RunOutcome,
    /// Scheduler sees only posted prices.
    pub price_blind: RunOutcome,
}

impl GreenResult {
    /// Additional green fraction won by following the sun.
    pub fn green_fraction_gain(&self) -> f64 {
        self.sun_aware.energy.green_fraction() - self.price_blind.energy.green_fraction()
    }

    /// CO₂ intensity reduction, g/kWh.
    pub fn carbon_reduction_g_per_kwh(&self) -> f64 {
        self.price_blind.energy.intensity_g_per_kwh() - self.sun_aware.energy.intensity_g_per_kwh()
    }
}

/// Builds one arm's world.
fn build(cfg: &GreenConfig, aware: bool) -> Scenario {
    let days = cfg.hours / 24 + 1;
    let (solar_dcs, solar_per_pm_w, min_sky, seed) = (
        cfg.solar_dcs.clone(),
        cfg.solar_per_pm_w,
        cfg.min_sky,
        cfg.seed,
    );
    ScenarioBuilder::paper_multi_dc()
        .vms(cfg.vms)
        .pms_per_dc(cfg.pms_per_dc)
        .load_scale(cfg.load_scale)
        .seed(cfg.seed)
        .name(if aware {
            "follow-the-sun"
        } else {
            "price-blind"
        })
        // Latency-neutral clients: the energy term alone decides.
        .workload(pamdc_workload::libcn::uniform_multi_dc(
            cfg.vms,
            170.0 * cfg.load_scale,
            cfg.seed,
        ))
        .energy(move |cluster, mut env| {
            for &dc in &solar_dcs {
                let capacity = solar_per_pm_w * cluster.dcs()[dc].pms().len() as f64;
                env = env.with_solar_at(cluster, dc, capacity, min_sky, days, seed);
            }
            if aware {
                env
            } else {
                env.price_blind()
            }
        })
        .build()
}

/// Stage 2: the sun-aware and price-blind arms.
fn arms(cfg: &GreenConfig) -> Vec<Arm> {
    let run_cfg = RunConfig {
        plan_horizon_ticks: Some(PLAN_HORIZON_TICKS),
        ..RunConfig::default()
    };
    [("sun_aware", true), ("price_blind", false)]
        .into_iter()
        .map(|(label, aware)| {
            Arm::new(
                label,
                build(cfg, aware),
                Box::new(HierarchicalPolicy::new(TrueOracle::new())),
                cfg.hours,
            )
            .config(run_cfg.clone())
        })
        .collect()
}

/// Runs both arms in parallel.
pub fn run(cfg: &GreenConfig) -> GreenResult {
    let mut outcomes = experiment::execute(arms(cfg)).into_iter();
    GreenResult {
        sun_aware: outcomes.next().expect("sun-aware arm").1,
        price_blind: outcomes.next().expect("price-blind arm").1,
    }
}

/// The registry-facing experiment.
pub struct Green {
    /// Arm configuration.
    pub cfg: GreenConfig,
}

impl Experiment for Green {
    fn arms(&mut self, _training: Option<&crate::training::TrainingOutcome>) -> Vec<Arm> {
        arms(&self.cfg)
    }

    fn emit(&self, run: ExperimentRun) -> ExperimentReport {
        let mut metrics = run.arm_metrics();
        let mut outcomes = run.into_outcomes().into_iter();
        let result = GreenResult {
            sun_aware: outcomes.next().expect("sun-aware arm"),
            price_blind: outcomes.next().expect("price-blind arm"),
        };
        metrics.push((
            "green_fraction_gain".to_string(),
            result.green_fraction_gain(),
        ));
        ExperimentReport {
            text: render(&result),
            metrics,
        }
    }
}

/// Renders the comparison table.
pub fn render(result: &GreenResult) -> String {
    let mut t = TextTable::new(&[
        "scenario",
        "green %",
        "gCO2/kWh",
        "energy €",
        "Avg W",
        "Avg SLA",
        "migrations",
    ]);
    for (label, o) in [
        ("Sun-aware", &result.sun_aware),
        ("Price-blind", &result.price_blind),
    ] {
        t.row(vec![
            label.to_string(),
            format!("{:.1}", 100.0 * o.energy.green_fraction()),
            format!("{:.0}", o.energy.intensity_g_per_kwh()),
            format!("{:.4}", o.profit.energy_eur),
            format!("{:.1}", o.avg_watts),
            format!("{:.4}", o.mean_sla),
            o.migrations.to_string(),
        ]);
    }
    format!(
        "Follow-the-sun extension — green share +{:.1} pp, carbon −{:.0} g/kWh\n{}",
        100.0 * result.green_fraction_gain(),
        result.carbon_reduction_g_per_kwh(),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sun_aware_beats_blind_on_green_share() {
        let result = run(&GreenConfig::quick(3));
        assert!(
            result.green_fraction_gain() > 0.02,
            "following the sun must raise the green share: aware {:.3} vs blind {:.3}",
            result.sun_aware.energy.green_fraction(),
            result.price_blind.energy.green_fraction()
        );
        assert!(result.carbon_reduction_g_per_kwh() > 0.0);
        // QoS must not collapse to buy the green share.
        assert!(result.sun_aware.mean_sla > result.price_blind.mean_sla - 0.05);
        // Chasing the sun requires actually migrating.
        assert!(result.sun_aware.migrations > 0);
        let rendered = render(&result);
        assert!(rendered.contains("Sun-aware"));
    }
}
