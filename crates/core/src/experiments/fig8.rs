//! E-F8 — the paper's **Figure 8**: the SLA vs energy vs load
//! characteristic surface.
//!
//! "Given the amount of load, as we want to improve the SLA fulfillment
//! we are forced to consume more energy." The surface is traced by
//! sweeping the global load scale and, per load level, varying how much
//! energy the system may spend (here: how many hosts per DC it may
//! power), then measuring the achieved SLA. Sweep points run in
//! parallel — one sweep point per [`pamdc_simcore::par::parallel_map`]
//! item, each with its own derived seed, so the sweep is deterministic
//! regardless of thread interleaving.

use crate::experiment::{self, Arm, Experiment, ExperimentReport, ExperimentRun};
use crate::policy::HierarchicalPolicy;
use crate::report::TextTable;
use crate::scenario::ScenarioBuilder;
use crate::simulation::RunOutcome;
use pamdc_sched::oracle::TrueOracle;

/// Configuration of the Figure-8 sweep.
#[derive(Clone, Debug)]
pub struct Fig8Config {
    /// Load multipliers to sweep.
    pub load_scales: Vec<f64>,
    /// Hosts-per-DC levels to sweep (the energy budget axis).
    pub pms_per_dc: Vec<usize>,
    /// Hours per point.
    pub hours: u64,
    /// VMs.
    pub vms: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for Fig8Config {
    fn default() -> Self {
        Fig8Config {
            load_scales: vec![0.5, 1.0, 1.5, 2.0],
            pms_per_dc: vec![1, 2, 3],
            hours: 6,
            vms: 5,
            seed: 9,
        }
    }
}

impl Fig8Config {
    /// Tiny sweep for tests.
    pub fn quick(seed: u64) -> Self {
        Fig8Config {
            load_scales: vec![0.6, 1.8],
            pms_per_dc: vec![1, 2],
            hours: 2,
            vms: 4,
            seed,
        }
    }
}

/// One point of the surface.
#[derive(Clone, Copy, Debug)]
pub struct SurfacePoint {
    /// Load multiplier.
    pub load_scale: f64,
    /// Hosts per DC allowed.
    pub pms_per_dc: usize,
    /// Measured mean request rate, req/s.
    pub mean_rps: f64,
    /// Measured mean facility draw, W.
    pub avg_watts: f64,
    /// Measured mean SLA.
    pub mean_sla: f64,
}

/// The full surface.
pub struct Fig8Result {
    /// All sweep points, load-major order.
    pub points: Vec<SurfacePoint>,
}

/// The sweep grid, load-major.
fn combos(cfg: &Fig8Config) -> Vec<(f64, usize)> {
    let mut combos: Vec<(f64, usize)> = Vec::new();
    for &ls in &cfg.load_scales {
        for &pms in &cfg.pms_per_dc {
            combos.push((ls, pms));
        }
    }
    combos
}

/// Stage 2: one arm per sweep point.
fn arms(cfg: &Fig8Config) -> Vec<Arm> {
    combos(cfg)
        .into_iter()
        .map(|(load_scale, pms_per_dc)| {
            let scenario = ScenarioBuilder::paper_multi_dc()
                .vms(cfg.vms)
                .pms_per_dc(pms_per_dc)
                .load_scale(load_scale)
                .seed(cfg.seed)
                .build();
            let policy = Box::new(HierarchicalPolicy::new(TrueOracle::new()));
            Arm::new("", scenario, policy, cfg.hours)
        })
        .collect()
}

/// Stage 4: pairs the outcomes back with their grid coordinates.
fn points_from(cfg: &Fig8Config, outcomes: Vec<RunOutcome>) -> Vec<SurfacePoint> {
    combos(cfg)
        .into_iter()
        .zip(outcomes)
        .map(|((load_scale, pms_per_dc), o)| {
            let mean_rps = o.series.get("rps").map(|s| s.mean()).unwrap_or(0.0);
            SurfacePoint {
                load_scale,
                pms_per_dc,
                mean_rps,
                avg_watts: o.avg_watts,
                mean_sla: o.mean_sla,
            }
        })
        .collect()
}

/// Runs the sweep in parallel.
pub fn run(cfg: &Fig8Config) -> Fig8Result {
    let outcomes = experiment::execute(arms(cfg))
        .into_iter()
        .map(|(_, o)| o)
        .collect();
    Fig8Result {
        points: points_from(cfg, outcomes),
    }
}

/// The registry-facing experiment. The surface is a plot, not a metric
/// list: the report stays table-only (CSV-ready via the rendered rows).
pub struct Fig8 {
    /// Sweep configuration.
    pub cfg: Fig8Config,
}

impl Experiment for Fig8 {
    fn arms(&mut self, _training: Option<&crate::training::TrainingOutcome>) -> Vec<Arm> {
        arms(&self.cfg)
    }

    fn emit(&self, run: ExperimentRun) -> ExperimentReport {
        let result = Fig8Result {
            points: points_from(&self.cfg, run.into_outcomes()),
        };
        ExperimentReport {
            text: render(&result),
            metrics: Vec::new(),
        }
    }
}

/// Renders the surface as rows (plot-ready CSV via
/// [`crate::report::TextTable::to_csv`]).
pub fn render(result: &Fig8Result) -> String {
    let mut t = TextTable::new(&["load scale", "PMs/DC", "mean rps", "avg W", "mean SLA"]);
    for p in &result.points {
        t.row(vec![
            format!("{:.2}", p.load_scale),
            p.pms_per_dc.to_string(),
            format!("{:.1}", p.mean_rps),
            format!("{:.1}", p.avg_watts),
            format!("{:.4}", p.mean_sla),
        ]);
    }
    format!("Figure 8 — SLA vs energy vs load surface\n{}", t.render())
}
