//! Experiment drivers: one module per table/figure of the paper's
//! evaluation — plus one per future-work extension — each returning a
//! structured result that the benches and examples render.

pub mod ablations;
pub mod deloc;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7_table3;
pub mod fig8;
pub mod green;
pub mod heterogeneity;
pub mod online_drift;
pub mod price_adaptation;
pub mod scaling;
pub mod solver_scaling;
pub mod table1;
pub mod table2;
