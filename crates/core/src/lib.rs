//! # pamdc-core — the managed multi-DC system
//!
//! The paper's pieces assembled into a running system: experimental
//! [`scenario`]s, the MAPE [`simulation`] loop, pluggable placement
//! [`policy`] implementations, the Table-I [`training`] pipeline, report
//! rendering ([`report`]), the shared [`experiment`] pipeline
//! (training → arm enumeration → execution → emission) and one driver
//! per table/figure of the evaluation ([`experiments`]), each a thin
//! [`experiment::Experiment`] over that pipeline.

pub mod energy;
pub mod engine;
pub mod experiment;
pub mod experiments;
pub mod policy;
pub mod report;
pub mod scenario;
pub mod simulation;
pub mod training;

/// Common imports.
pub mod prelude {
    pub use crate::energy::EnergyEnvironment;
    pub use crate::engine::{
        Controller, ControllerSnapshot, DeadlineGovernor, RoundFidelity, RoundOutcome, StepDemand,
        TickOutcome,
    };
    pub use crate::experiment::{
        outcome_metrics, run_experiment, Arm, Experiment, ExperimentReport, ExperimentRun,
    };
    pub use crate::policy::{
        BestFitPolicy, CheapestEnergyPolicy, FollowLoadPolicy, HierarchicalPolicy, PlacementPolicy,
        RandomPolicy, StaticPolicy,
    };
    pub use crate::report::TextTable;
    pub use crate::scenario::{ProfileChange, Scenario, ScenarioBuilder};
    pub use crate::simulation::{RunConfig, RunOutcome, SimulationRunner};
    pub use crate::training::{
        collect_training_data, train_paper_suite, train_suite, TrainingCollector, TrainingOutcome,
    };
}
