//! Scenario construction: the experimental setups of the paper, built
//! from the infra + workload substrates.
//!
//! * `paper_intra_dc` — §V-B: one DC (Barcelona), 4 Atom PMs, N VMs,
//!   locally-sourced Li-BCN-style load (Figure 4).
//! * `paper_multi_dc` — §V-C: four DCs (Brisbane/Bangalore/Barcelona/
//!   Boston) with Table-II prices and latencies, one PM each by default
//!   ("we set one PM to represent a DC"), worldwide load with timezone
//!   phase shifts (Figures 6, 7, Table III).
//! * `follow_the_sun` — the Figure 5 sanity check: one VM, equal region
//!   weights, noon-peaked profiles.

use crate::energy::EnergyEnvironment;
use pamdc_econ::billing::BillingPolicy;
use pamdc_econ::prices::paper_energy_price;
use pamdc_infra::cluster::Cluster;
use pamdc_infra::ids::{PmId, VmId};
use pamdc_infra::monitor::MonitorConfig;
use pamdc_infra::network::{City, NetworkModel};
use pamdc_infra::pm::MachineSpec;
use pamdc_infra::vm::VmSpec;
use pamdc_perf::demand::VmPerfProfile;
use pamdc_perf::rt::RtModelConfig;
use pamdc_simcore::time::{SimDuration, SimTime};
use pamdc_workload::generator::Workload;
use pamdc_workload::libcn;
use pamdc_workload::source::Demand;
use std::sync::Arc;

/// A fully built experimental world, ready for a
/// [`crate::simulation::SimulationRunner`].
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Human-readable label.
    pub name: String,
    /// The infrastructure (DCs, PMs, VMs, network), with VMs deployed.
    pub cluster: Cluster,
    /// The demand source (service index i drives VM i): the synthetic
    /// generator, or a recorded trace being replayed.
    pub workload: Demand,
    /// Per-VM performance constants (indexing matches VM ids).
    pub perf_profiles: Vec<VmPerfProfile>,
    /// Monitor distortion.
    pub monitor: MonitorConfig,
    /// Ground-truth RT model tunables.
    pub rt_cfg: RtModelConfig,
    /// Pricing.
    pub billing: BillingPolicy,
    /// Per-DC energy supply (tariffs, renewables, carbon). Defaults to
    /// the paper's flat Table II regime; richer environments are
    /// installed at build time via [`ScenarioBuilder::energy`], which
    /// hands the hook the built cluster's shape.
    pub energy: EnergyEnvironment,
    /// Scheduled host crashes (failure injection); empty by default.
    pub faults: Vec<pamdc_infra::pm::FaultEvent>,
    /// Scheduled performance-profile swaps ("software updates"): at the
    /// given instant the VM's ground-truth perf constants change, so
    /// models trained before the change go stale — the paper's on-line
    /// learning future-work case. Empty by default.
    pub profile_changes: Vec<ProfileChange>,
    /// Master seed.
    pub seed: u64,
}

/// One scheduled ground-truth performance change.
#[derive(Clone, Copy, Debug)]
pub struct ProfileChange {
    /// When the update lands.
    pub at: SimTime,
    /// Which VM it affects.
    pub vm: usize,
    /// The new performance constants.
    pub profile: VmPerfProfile,
}

/// Which of the paper's topologies to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Topology {
    /// One DC (Barcelona) with `pms` hosts.
    IntraDc,
    /// Four DCs with `pms` hosts each.
    MultiDc,
}

/// Which workload preset to attach.
#[derive(Clone, Copy, Debug, PartialEq)]
enum WorkloadKind {
    IntraDc,
    MultiDc,
    FollowTheSun,
}

/// Per-service VM sizing: the static [`VmSpec`] a service's VM is built
/// with, plus the performance constants derived from it. The default is
/// exactly the paper's uniform web-service VM, so scenarios that never
/// declare sizes are bit-identical to the pre-sizing engine.
#[derive(Clone, Debug)]
pub struct ServiceSpec {
    /// Static VM description (image size, memory floor, SLA terms).
    pub vm: VmSpec,
    /// Memory held per in-flight request, MB. `None` falls back to the
    /// service class's constant (and, for imported traces, to the
    /// trace's per-service memory profile when it carries one).
    pub mem_mb_per_inflight: Option<f64>,
    /// Non-CPU fraction of service time (I/O waits).
    pub io_wait_factor: f64,
    /// Idle CPU of the stack, percent-of-core.
    pub idle_cpu_pct: f64,
}

impl Default for ServiceSpec {
    fn default() -> Self {
        ServiceSpec {
            vm: VmSpec::web_service(),
            mem_mb_per_inflight: None,
            io_wait_factor: 0.6,
            idle_cpu_pct: 2.0,
        }
    }
}

/// A build-time energy-environment hook: receives the built cluster and
/// the paper-default environment, returns the environment the scenario
/// should run under. This is how experiments install solar farms, tariff
/// shocks or price blindness *before* `build()` returns — no post-build
/// mutation needed even though sizing solar requires the cluster shape.
#[derive(Clone)]
pub struct EnergyHook(Arc<EnergyHookFn>);

/// The hook's function type.
type EnergyHookFn = dyn Fn(&Cluster, EnergyEnvironment) -> EnergyEnvironment + Send + Sync;

impl std::fmt::Debug for EnergyHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("EnergyHook(..)")
    }
}

/// Fluent scenario builder.
#[derive(Clone, Debug)]
pub struct ScenarioBuilder {
    name: String,
    topology: Topology,
    workload_kind: WorkloadKind,
    vms: usize,
    pms_per_dc: usize,
    peak_rps: f64,
    load_scale: f64,
    flash_crowd_multiplier: Option<f64>,
    monitor: MonitorConfig,
    rt_cfg: RtModelConfig,
    billing: BillingPolicy,
    faults: Vec<pamdc_infra::pm::FaultEvent>,
    profile_changes: Vec<ProfileChange>,
    seed: u64,
    deploy_all_in: Option<usize>,
    demand_override: Option<Demand>,
    energy_hook: Option<EnergyHook>,
    /// Per-DC host-class mix: each DC gets `count` hosts of each spec,
    /// in list order. Empty = `pms_per_dc` Atom hosts (the paper fleet).
    host_classes: Vec<(MachineSpec, usize)>,
    /// Per-service VM sizing: `count` consecutive services of each spec,
    /// in list order (counts must sum to `vms`). Empty = every VM is the
    /// paper's uniform web-service spec.
    service_specs: Vec<(ServiceSpec, usize)>,
}

impl ScenarioBuilder {
    /// §V-B setup: 1 DC, 4 PMs, local clients (Figure 4 / Table I).
    pub fn paper_intra_dc() -> Self {
        ScenarioBuilder {
            name: "intra-dc".into(),
            topology: Topology::IntraDc,
            workload_kind: WorkloadKind::IntraDc,
            vms: 5,
            pms_per_dc: 4,
            peak_rps: 240.0,
            load_scale: 1.0,
            flash_crowd_multiplier: None,
            monitor: MonitorConfig::default(),
            rt_cfg: RtModelConfig::default(),
            billing: BillingPolicy::default(),
            faults: Vec::new(),
            profile_changes: Vec::new(),
            seed: 1,
            deploy_all_in: None,
            demand_override: None,
            energy_hook: None,
            host_classes: Vec::new(),
            service_specs: Vec::new(),
        }
    }

    /// §V-C setup: 4 DCs × 1 PM, worldwide clients (Figures 6/7,
    /// Table III).
    pub fn paper_multi_dc() -> Self {
        ScenarioBuilder {
            name: "multi-dc".into(),
            topology: Topology::MultiDc,
            workload_kind: WorkloadKind::MultiDc,
            vms: 5,
            pms_per_dc: 1,
            peak_rps: 170.0,
            load_scale: 1.0,
            flash_crowd_multiplier: None,
            monitor: MonitorConfig::default(),
            rt_cfg: RtModelConfig::default(),
            billing: BillingPolicy::default(),
            faults: Vec::new(),
            profile_changes: Vec::new(),
            seed: 1,
            deploy_all_in: None,
            demand_override: None,
            energy_hook: None,
            host_classes: Vec::new(),
            service_specs: Vec::new(),
        }
    }

    /// The Figure 5 sanity check: one VM chasing the sun.
    pub fn follow_the_sun() -> Self {
        ScenarioBuilder {
            vms: 1,
            workload_kind: WorkloadKind::FollowTheSun,
            name: "follow-the-sun".into(),
            ..Self::paper_multi_dc()
        }
    }

    /// Number of VMs (= hosted web-services).
    pub fn vms(mut self, n: usize) -> Self {
        assert!(n >= 1);
        self.vms = n;
        self
    }

    /// Hosts per datacenter.
    pub fn pms_per_dc(mut self, n: usize) -> Self {
        assert!(n >= 1);
        self.pms_per_dc = n;
        self
    }

    /// Nominal peak request rate per service.
    pub fn peak_rps(mut self, rps: f64) -> Self {
        self.peak_rps = rps;
        self
    }

    /// Global load multiplier (the Figure 8 sweep axis).
    pub fn load_scale(mut self, k: f64) -> Self {
        self.load_scale = k.max(0.0);
        self
    }

    /// Adds the paper's minute-70–90 flash crowd.
    pub fn flash_crowd(mut self, multiplier: f64) -> Self {
        self.flash_crowd_multiplier = Some(multiplier);
        self
    }

    /// Overrides monitor distortion.
    pub fn monitor(mut self, cfg: MonitorConfig) -> Self {
        self.monitor = cfg;
        self
    }

    /// Overrides the ground-truth RT model config.
    pub fn rt_config(mut self, cfg: RtModelConfig) -> Self {
        self.rt_cfg = cfg;
        self
    }

    /// Overrides billing.
    pub fn billing(mut self, billing: BillingPolicy) -> Self {
        self.billing = billing;
        self
    }

    /// Initially deploys every VM into the given DC index (the
    /// de-location experiment starts with one overloaded home DC).
    pub fn deploy_all_in(mut self, dc_idx: usize) -> Self {
        self.deploy_all_in = Some(dc_idx);
        self
    }

    /// Replaces the preset synthetic workload with an explicit one.
    /// The workload is used as-is (no `peak_rps`/`load_scale` rescaling;
    /// a configured flash crowd is still attached); its service count
    /// must match [`ScenarioBuilder::vms`].
    pub fn workload(mut self, workload: Workload) -> Self {
        self.demand_override = Some(Demand::Synthetic(workload));
        self
    }

    /// Replaces the demand source entirely — e.g. a recorded
    /// [`pamdc_workload::trace::TraceSource`] replayed instead of the
    /// synthetic generator. The source's service count must match
    /// [`ScenarioBuilder::vms`].
    pub fn demand(mut self, demand: impl Into<Demand>) -> Self {
        self.demand_override = Some(demand.into());
        self
    }

    /// Installs a heterogeneous host-class mix: every datacenter gets
    /// `count` hosts of each [`MachineSpec`], in list order (so PM
    /// indices within a DC group by class). An empty list keeps the
    /// default fleet of [`ScenarioBuilder::pms_per_dc`] Atom hosts.
    pub fn host_classes(mut self, classes: Vec<(MachineSpec, usize)>) -> Self {
        assert!(
            classes.iter().all(|(_, count)| *count >= 1),
            "every host class needs at least one host per DC"
        );
        self.host_classes = classes;
        self
    }

    /// Installs per-service VM sizing: `count` consecutive services of
    /// each [`ServiceSpec`], in list order. The counts must sum to
    /// [`ScenarioBuilder::vms`] (checked at build). An empty list keeps
    /// the paper's uniform web-service VM for every service.
    pub fn service_specs(mut self, specs: Vec<(ServiceSpec, usize)>) -> Self {
        assert!(
            specs.iter().all(|(_, count)| *count >= 1),
            "every service spec needs at least one service"
        );
        self.service_specs = specs;
        self
    }

    /// Installs an energy-environment hook, run at the end of `build()`
    /// with the built cluster and the paper-default environment. This is
    /// the supported way to attach solar farms, tariff schedules or
    /// price blindness — environments need the cluster's shape, which
    /// only exists at build time.
    pub fn energy(
        mut self,
        hook: impl Fn(&Cluster, EnergyEnvironment) -> EnergyEnvironment + Send + Sync + 'static,
    ) -> Self {
        self.energy_hook = Some(EnergyHook(Arc::new(hook)));
        self
    }

    /// Schedules a host crash: PM index `pm_idx` fails at `at` and is
    /// repaired after `repair_after` (then reboots automatically).
    pub fn fault(mut self, pm_idx: usize, at: SimTime, repair_after: SimDuration) -> Self {
        self.faults.push(pamdc_infra::pm::FaultEvent {
            pm: PmId::from_index(pm_idx),
            at,
            repair_after,
        });
        self
    }

    /// Schedules a ground-truth performance change ("software update")
    /// for VM `vm` at `at`.
    pub fn profile_change(mut self, vm: usize, at: SimTime, profile: VmPerfProfile) -> Self {
        self.profile_changes.push(ProfileChange { at, vm, profile });
        self
    }

    /// Master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Renames the scenario.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Builds the world: cluster constructed, VMs deployed to their home
    /// DCs, workload attached.
    pub fn build(self) -> Scenario {
        let mut cluster = Cluster::new(NetworkModel::paper());
        let cities: &[City] = match self.topology {
            Topology::IntraDc => &[City::Barcelona],
            Topology::MultiDc => &City::ALL,
        };
        for city in cities {
            let dc =
                cluster.add_datacenter(city.code(), city.location(), paper_energy_price(*city));
            if self.host_classes.is_empty() {
                for _ in 0..self.pms_per_dc {
                    cluster.add_pm(dc, MachineSpec::atom());
                }
            } else {
                for (spec, count) in &self.host_classes {
                    for _ in 0..*count {
                        cluster.add_pm(dc, spec.clone());
                    }
                }
            }
        }

        // Per-service VM sizing: expand the (spec, count) list into one
        // entry per service. VM i takes entry i; an empty list sizes
        // every VM as the paper's uniform web service.
        let per_service: Vec<ServiceSpec> = self
            .service_specs
            .iter()
            .flat_map(|(spec, count)| std::iter::repeat_with(|| spec.clone()).take(*count))
            .collect();
        assert!(
            per_service.is_empty() || per_service.len() == self.vms,
            "service spec counts cover {} services but the scenario hosts {} VMs",
            per_service.len(),
            self.vms
        );
        let service_spec =
            |i: usize| -> ServiceSpec { per_service.get(i).cloned().unwrap_or_default() };

        // VMs: home region rotates (i % regions); deploy onto the home
        // DC's least-loaded PM (round-robin within the DC).
        let n_dcs = cluster.dc_count();
        for i in 0..self.vms {
            let home_city = match self.topology {
                Topology::IntraDc => City::Barcelona,
                Topology::MultiDc => City::ALL[i % 4],
            };
            let vm = cluster.add_vm(service_spec(i).vm, home_city.location());
            let dc = &cluster.dcs()[i % n_dcs.min(cities.len())];
            // In intra-DC there is one DC; in multi-DC home DC = i % 4.
            let dc_idx = self.deploy_all_in.unwrap_or(match self.topology {
                Topology::IntraDc => 0,
                Topology::MultiDc => i % 4,
            });
            let _ = dc;
            let pms = cluster.dcs()[dc_idx].pms().to_vec();
            let pm: PmId = pms[(i / n_dcs.max(1)) % pms.len()];
            cluster.deploy(vm, pm, SimTime::ZERO);
        }
        // Let boots complete before the run starts.
        cluster.tick(SimTime::from_mins(3));

        let scaled = self.peak_rps * self.load_scale;
        let demand = match self.demand_override {
            Some(demand) => {
                assert_eq!(
                    demand.service_count(),
                    self.vms,
                    "demand source must carry one service per VM"
                );
                match (demand, self.flash_crowd_multiplier) {
                    (Demand::Synthetic(w), Some(mult)) => Demand::Synthetic(w.with_flash_crowd(
                        pamdc_workload::flashcrowd::FlashCrowd::paper_fig6(mult),
                    )),
                    (Demand::Trace(_) | Demand::Tail(_), Some(_)) => panic!(
                        "a flash crowd cannot be applied to a trace or feed demand — it \
                         already carries its demand; bake the crowd into the recording"
                    ),
                    (demand, None) => demand,
                }
            }
            None => {
                let mut workload = match self.workload_kind {
                    WorkloadKind::IntraDc => libcn::intra_dc(self.vms, scaled, self.seed),
                    WorkloadKind::MultiDc => libcn::multi_dc(self.vms, scaled, self.seed),
                    WorkloadKind::FollowTheSun => libcn::follow_the_sun(scaled, self.seed),
                };
                if let Some(mult) = self.flash_crowd_multiplier {
                    workload = workload
                        .with_flash_crowd(pamdc_workload::flashcrowd::FlashCrowd::paper_fig6(mult));
                }
                Demand::Synthetic(workload)
            }
        };

        let perf_profiles = (0..self.vms)
            .map(|i| {
                let class = demand.service_class(i);
                let svc = service_spec(i);
                // Memory-per-in-flight precedence: an explicit service
                // spec wins, then a trace-imported per-service memory
                // profile (Alibaba's mem_util_percent), then the class
                // constant.
                let mem_mb_per_inflight = svc
                    .mem_mb_per_inflight
                    .or_else(|| demand.mem_mb_per_inflight(i))
                    .unwrap_or_else(|| class.mem_mb_per_inflight());
                VmPerfProfile {
                    base_mem_mb: cluster.vm(VmId::from_index(i)).spec.base_mem_mb,
                    mem_mb_per_inflight,
                    io_wait_factor: svc.io_wait_factor,
                    idle_cpu_pct: svc.idle_cpu_pct,
                }
            })
            .collect();

        let energy = {
            let default = EnergyEnvironment::paper_default(&cluster);
            match &self.energy_hook {
                Some(EnergyHook(hook)) => hook(&cluster, default),
                None => default,
            }
        };
        let mut faults = self.faults;
        faults.sort_by_key(|f| f.at);
        let mut profile_changes = self.profile_changes;
        profile_changes.sort_by_key(|c| c.at);
        for c in &profile_changes {
            assert!(
                c.vm < self.vms,
                "profile change targets VM {} of {}",
                c.vm,
                self.vms
            );
        }
        Scenario {
            name: self.name,
            cluster,
            workload: demand,
            perf_profiles,
            monitor: self.monitor,
            rt_cfg: self.rt_cfg,
            billing: self.billing,
            energy,
            faults,
            profile_changes,
            seed: self.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intra_dc_shape() {
        let s = ScenarioBuilder::paper_intra_dc().vms(5).seed(3).build();
        assert_eq!(s.cluster.dc_count(), 1);
        assert_eq!(s.cluster.pm_count(), 4);
        assert_eq!(s.cluster.vm_count(), 5);
        assert_eq!(s.workload.service_count(), 5);
        assert_eq!(s.perf_profiles.len(), 5);
        // All VMs are placed.
        for i in 0..5 {
            assert!(s.cluster.placement(VmId::from_index(i)).is_some());
        }
        s.cluster.check_invariants();
    }

    #[test]
    fn multi_dc_spreads_homes() {
        let s = ScenarioBuilder::paper_multi_dc().vms(5).build();
        assert_eq!(s.cluster.dc_count(), 4);
        assert_eq!(s.cluster.pm_count(), 4);
        // VM i lives in DC i%4 initially.
        for i in 0..5 {
            let pm = s.cluster.placement(VmId::from_index(i)).unwrap();
            assert_eq!(s.cluster.dc_of_pm(pm).index(), i % 4);
        }
    }

    #[test]
    fn follow_the_sun_is_single_vm() {
        let s = ScenarioBuilder::follow_the_sun().build();
        assert_eq!(s.cluster.vm_count(), 1);
        assert_eq!(s.workload.service_count(), 1);
    }

    #[test]
    fn builder_knobs_apply() {
        let s = ScenarioBuilder::paper_multi_dc()
            .vms(3)
            .pms_per_dc(2)
            .peak_rps(100.0)
            .load_scale(2.0)
            .flash_crowd(8.0)
            .seed(99)
            .name("custom")
            .build();
        assert_eq!(s.name, "custom");
        assert_eq!(s.cluster.pm_count(), 8);
        let workload = s
            .workload
            .synthetic()
            .expect("preset workloads are synthetic");
        assert_eq!(workload.flash_crowds.len(), 1);
        assert_eq!(s.seed, 99);
        // Load scale doubles the nominal scale.
        assert!(
            (workload.services[0].scale_rps - 200.0 * 0.8).abs() < 1e-6
                || workload.services[0].scale_rps > 100.0
        );
    }

    #[test]
    fn host_classes_build_a_mixed_fleet() {
        let s = ScenarioBuilder::paper_multi_dc()
            .vms(4)
            .host_classes(vec![
                (MachineSpec::atom(), 2),
                (MachineSpec::xeon(), 1),
                (MachineSpec::custom(2, 2048.0, 15.0, 22.0), 1),
            ])
            .build();
        // 4 DCs × (2 + 1 + 1) hosts, grouped by class within each DC.
        assert_eq!(s.cluster.pm_count(), 16);
        for dc in s.cluster.dcs() {
            let cores: Vec<usize> = dc
                .pms()
                .iter()
                .map(|&pm| s.cluster.pm(pm).spec.cores())
                .collect();
            assert_eq!(cores, vec![4, 4, 8, 2], "class order preserved per DC");
        }
        // All VMs deployed and invariants hold on the mixed fleet.
        for i in 0..4 {
            assert!(s.cluster.placement(VmId::from_index(i)).is_some());
        }
        s.cluster.check_invariants();
        // Empty classes keep the paper fleet bit-identical.
        let d = ScenarioBuilder::paper_multi_dc().vms(4).build();
        assert_eq!(d.cluster.pm_count(), 4);
    }

    #[test]
    fn energy_hook_runs_at_build_time() {
        let s = ScenarioBuilder::paper_multi_dc()
            .vms(4)
            .energy(|cluster, env| {
                assert_eq!(cluster.dc_count(), 4, "hook sees the built cluster");
                env.price_blind()
            })
            .build();
        assert!(!s.energy.scheduler_sees_dynamic_prices);
        // Without a hook the paper default applies.
        let d = ScenarioBuilder::paper_multi_dc().vms(4).build();
        assert!(d.energy.scheduler_sees_dynamic_prices);
    }

    #[test]
    fn workload_override_replaces_preset() {
        let s = ScenarioBuilder::paper_multi_dc()
            .vms(3)
            .workload(libcn::uniform_multi_dc(3, 150.0, 9))
            .build();
        let w = s.workload.synthetic().unwrap();
        assert_eq!(w.service_count(), 3);
        assert!(
            (w.services[0].scale_rps - 150.0).abs() < 1e-12,
            "override used as-is"
        );
    }

    #[test]
    fn trace_demand_builds_profiles_from_trace_classes() {
        use pamdc_workload::source::DemandSource;
        use pamdc_workload::trace::{DemandTrace, TraceSource};

        let w = libcn::multi_dc(3, 120.0, 4);
        let trace = DemandTrace::record(&w, SimDuration::from_hours(1), SimDuration::from_mins(1));
        let s = ScenarioBuilder::paper_multi_dc()
            .vms(3)
            .demand(TraceSource::new(trace))
            .build();
        assert!(s.workload.trace().is_some());
        for i in 0..3 {
            assert_eq!(
                s.workload.service_class(i),
                DemandSource::service_class(&w, i)
            );
        }
    }

    #[test]
    fn service_specs_size_vms_and_profiles() {
        let heavy = ServiceSpec {
            vm: VmSpec {
                image_size_mb: 8192.0,
                base_mem_mb: 2048.0,
                rt0_secs: 0.2,
                alpha: 5.0,
            },
            mem_mb_per_inflight: Some(24.0),
            io_wait_factor: 0.8,
            idle_cpu_pct: 3.0,
        };
        let s = ScenarioBuilder::paper_multi_dc()
            .vms(3)
            .service_specs(vec![(ServiceSpec::default(), 2), (heavy, 1)])
            .build();
        // VMs 0-1: the uniform paper web service; VM 2: the heavy spec.
        let default_vm = s.cluster.vm(VmId::from_index(0));
        assert_eq!(default_vm.spec.image_size_mb, 2048.0);
        assert_eq!(default_vm.spec.base_mem_mb, 256.0);
        let heavy_vm = s.cluster.vm(VmId::from_index(2));
        assert_eq!(heavy_vm.spec.image_size_mb, 8192.0);
        assert_eq!(heavy_vm.spec.base_mem_mb, 2048.0);
        assert_eq!(heavy_vm.spec.rt0_secs, 0.2);
        // Perf profiles follow: explicit per-inflight override for the
        // heavy spec, class constants for the default ones.
        assert_eq!(s.perf_profiles[2].base_mem_mb, 2048.0);
        assert_eq!(s.perf_profiles[2].mem_mb_per_inflight, 24.0);
        assert_eq!(s.perf_profiles[2].io_wait_factor, 0.8);
        assert_eq!(s.perf_profiles[2].idle_cpu_pct, 3.0);
        assert_eq!(s.perf_profiles[0].base_mem_mb, 256.0);
        assert_eq!(
            s.perf_profiles[0].mem_mb_per_inflight,
            s.workload.service_class(0).mem_mb_per_inflight()
        );
        assert_eq!(s.perf_profiles[0].io_wait_factor, 0.6);
        s.cluster.check_invariants();
    }

    #[test]
    #[should_panic(expected = "service spec counts cover")]
    fn mismatched_service_spec_counts_panic() {
        let _ = ScenarioBuilder::paper_multi_dc()
            .vms(4)
            .service_specs(vec![(ServiceSpec::default(), 2)])
            .build();
    }

    #[test]
    fn imported_memory_profile_reaches_perf_profiles() {
        use pamdc_workload::trace::{DemandTrace, TraceSource};

        let w = libcn::multi_dc(2, 120.0, 4);
        let mut trace =
            DemandTrace::record(&w, SimDuration::from_hours(1), SimDuration::from_mins(1));
        trace.mem_mb_per_inflight = vec![Some(48.0), None];
        let s = ScenarioBuilder::paper_multi_dc()
            .vms(2)
            .demand(TraceSource::new(trace))
            .build();
        // Service 0 carries a measured profile; service 1 falls back to
        // its class constant.
        assert_eq!(s.perf_profiles[0].mem_mb_per_inflight, 48.0);
        assert_eq!(
            s.perf_profiles[1].mem_mb_per_inflight,
            s.workload.service_class(1).mem_mb_per_inflight()
        );
        // An explicit service spec outranks the trace's measurement.
        let w = libcn::multi_dc(2, 120.0, 4);
        let mut trace =
            DemandTrace::record(&w, SimDuration::from_hours(1), SimDuration::from_mins(1));
        trace.mem_mb_per_inflight = vec![Some(48.0), Some(48.0)];
        let override_spec = ServiceSpec {
            mem_mb_per_inflight: Some(7.0),
            ..ServiceSpec::default()
        };
        let s = ScenarioBuilder::paper_multi_dc()
            .vms(2)
            .service_specs(vec![(override_spec, 1), (ServiceSpec::default(), 1)])
            .demand(TraceSource::new(trace))
            .build();
        assert_eq!(s.perf_profiles[0].mem_mb_per_inflight, 7.0);
        assert_eq!(s.perf_profiles[1].mem_mb_per_inflight, 48.0);
    }

    #[test]
    #[should_panic(expected = "one service per VM")]
    fn mismatched_demand_override_panics() {
        let _ = ScenarioBuilder::paper_multi_dc()
            .vms(4)
            .workload(libcn::uniform_multi_dc(2, 100.0, 1))
            .build();
    }
}
