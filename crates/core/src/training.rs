//! The Table-I training pipeline: collect monitored samples from
//! exploration runs, build the seven datasets, train and validate the
//! predictor suite.
//!
//! Mirrors the paper's §IV-B methodology: the predictors learn from what
//! monitors *observed* on the running system (noisy, biased under
//! saturation), never from the ground-truth model equations. Demand
//! targets are taken only from unsaturated ticks (a starved VM's usage is
//! not its demand); the RT and SLA models are trained **second**, with
//! the stage-1 CPU prediction injected as a feature — "we add to these
//! predicted values information on the current load ... to predict
//! response time and/or SLA fulfillment level".

use crate::policy::RandomPolicy;
use crate::scenario::ScenarioBuilder;
use crate::simulation::{RunConfig, SimulationRunner};
use pamdc_infra::resources::Resources;
use pamdc_ml::dataset::Dataset;
use pamdc_ml::metrics::EvalReport;
use pamdc_ml::predictors::{PredictionTarget, PredictorSuite, TrainedPredictor};
use pamdc_perf::demand::OfferedLoad;
use pamdc_simcore::rng::RngStream;
use pamdc_simcore::time::SimDuration;
use std::sync::Arc;

/// One VM-tick observation (everything later datasets need).
#[derive(Clone, Copy, Debug)]
pub struct VmTickSample {
    /// Load features: rps, kb_in, kb_out, cpu_ms, backlog.
    pub load: [f64; 5],
    /// Monitored (noisy) usage.
    pub observed: Resources,
    /// Whether the VM failed to serve its offered load this tick.
    pub saturated: bool,
    /// CPU actually granted (percent-of-core).
    pub granted_cpu: f64,
    /// Granted/required memory ratio (≤ 1).
    pub mem_ratio: f64,
    /// Client transport latency, seconds.
    pub transport_secs: f64,
    /// Measured processing RT, seconds.
    pub rt_secs: f64,
    /// Measured SLA fulfillment.
    pub sla: f64,
}

/// One PM-tick observation.
#[derive(Clone, Copy, Debug)]
pub struct PmTickSample {
    /// Hosted VM count.
    pub n_vms: usize,
    /// Sum of the VMs' observed CPU.
    pub sum_vm_cpu: f64,
    /// Sum of the VMs' request rates.
    pub sum_rps: f64,
    /// Monitored total PM CPU (includes hypervisor overhead).
    pub pm_cpu: f64,
}

/// Accumulates raw samples during simulation runs.
#[derive(Clone, Debug, Default)]
pub struct TrainingCollector {
    /// VM-tick records.
    pub vm_ticks: Vec<VmTickSample>,
    /// PM-tick records.
    pub pm_ticks: Vec<PmTickSample>,
}

impl TrainingCollector {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Called by the simulation loop once per serving VM-tick.
    #[allow(clippy::too_many_arguments)]
    pub fn record_vm_tick(
        &mut self,
        load: &OfferedLoad,
        observed: &Resources,
        saturated: bool,
        granted_cpu: f64,
        mem_ratio: f64,
        transport_secs: f64,
        rt_secs: f64,
        sla: f64,
    ) {
        self.vm_ticks.push(VmTickSample {
            load: [
                load.rps,
                load.kb_in_per_req,
                load.kb_out_per_req,
                load.cpu_ms_per_req,
                load.backlog,
            ],
            observed: *observed,
            saturated,
            granted_cpu,
            mem_ratio,
            transport_secs,
            rt_secs,
            sla,
        });
    }

    /// Called by the simulation loop once per hosting PM-tick.
    pub fn record_pm_tick(&mut self, n_vms: usize, sum_vm_cpu: f64, sum_rps: f64, pm_cpu: f64) {
        self.pm_ticks.push(PmTickSample {
            n_vms,
            sum_vm_cpu,
            sum_rps,
            pm_cpu,
        });
    }

    /// Merges another collector (parallel collection runs).
    pub fn merge(&mut self, other: TrainingCollector) {
        self.vm_ticks.extend(other.vm_ticks);
        self.pm_ticks.extend(other.pm_ticks);
    }
}

/// Collects training data by running the intra-DC scenario under the
/// random exploration policy at several load scales (a deterministic
/// parallel sweep, one item per scale).
pub fn collect_training_data(
    vms: usize,
    scales: &[f64],
    hours_per_scale: u64,
    seed: u64,
) -> TrainingCollector {
    let mut merged = TrainingCollector::new();
    let jobs: Vec<(usize, f64)> = scales.iter().copied().enumerate().collect();
    let results: Vec<TrainingCollector> = pamdc_simcore::par::parallel_map(jobs, |(i, scale)| {
        let scenario = ScenarioBuilder::paper_intra_dc()
            .vms(vms)
            .load_scale(scale)
            .seed(seed.wrapping_add(i as u64 * 7919))
            .build();
        let policy = Box::new(RandomPolicy::new(seed ^ (i as u64)));
        let runner = SimulationRunner::new(scenario, policy)
            .config(RunConfig {
                keep_series: false,
                ..Default::default()
            })
            .collect_into(TrainingCollector::new());
        let (_, collector) = runner.run(SimDuration::from_hours(hours_per_scale));
        collector.expect("collector attached")
    });
    for c in results {
        merged.merge(c);
    }
    merged
}

/// The load-feature names shared by the four demand targets.
const LOAD_FEATURES: [&str; 5] = [
    "rps",
    "kb_in_per_req",
    "kb_out_per_req",
    "cpu_ms_per_req",
    "backlog",
];

/// Builds the four demand datasets (from unsaturated ticks only) and the
/// PM CPU dataset.
pub fn build_stage1_datasets(collector: &TrainingCollector) -> Vec<(PredictionTarget, Dataset)> {
    let mut cpu = Dataset::with_features(&LOAD_FEATURES);
    let mut mem = Dataset::with_features(&LOAD_FEATURES);
    let mut nin = Dataset::with_features(&LOAD_FEATURES);
    let mut nout = Dataset::with_features(&LOAD_FEATURES);
    for s in &collector.vm_ticks {
        if s.saturated {
            continue; // a starved VM's usage is not its demand
        }
        let f = s.load.to_vec();
        cpu.push(f.clone(), s.observed.cpu);
        mem.push(f.clone(), s.observed.mem_mb);
        nin.push(f.clone(), s.observed.net_in_kbps);
        nout.push(f, s.observed.net_out_kbps);
    }
    let mut pm = Dataset::with_features(&["n_vms", "sum_vm_cpu", "sum_rps"]);
    for s in &collector.pm_ticks {
        pm.push(vec![s.n_vms as f64, s.sum_vm_cpu, s.sum_rps], s.pm_cpu);
    }
    vec![
        (PredictionTarget::VmCpu, cpu),
        (PredictionTarget::VmMem, mem),
        (PredictionTarget::VmIn, nin),
        (PredictionTarget::VmOut, nout),
        (PredictionTarget::PmCpu, pm),
    ]
}

/// Builds the RT and SLA datasets, injecting the stage-1 CPU prediction
/// as the `required_cpu` feature.
pub fn build_stage2_datasets(
    collector: &TrainingCollector,
    cpu_model: &TrainedPredictor,
) -> Vec<(PredictionTarget, Dataset)> {
    let names = PredictionTarget::VmRt.feature_names();
    let mut rt = Dataset::with_features(names);
    let mut sla = Dataset::with_features(names);
    for s in &collector.vm_ticks {
        let required_cpu = cpu_model.predict(&s.load);
        let f = vec![
            s.load[0], // rps
            s.load[3], // cpu_ms_per_req
            required_cpu,
            s.granted_cpu,
            s.mem_ratio,
            s.load[4], // backlog
            s.transport_secs,
        ];
        rt.push(f.clone(), s.rt_secs);
        sla.push(f, s.sla);
    }
    vec![(PredictionTarget::VmRt, rt), (PredictionTarget::VmSla, sla)]
}

/// A trained suite plus its Table-I rows.
pub struct TrainingOutcome {
    /// The seven trained predictors (shared handle: experiment arms and
    /// oracles clone the `Arc`).
    pub suite: Arc<PredictorSuite>,
    /// `(paper row name, report)` in table order.
    pub reports: Vec<(String, EvalReport)>,
    /// Raw sample counts (vm ticks, pm ticks).
    pub sample_counts: (usize, usize),
}

/// Trains the full suite from collected samples. Stage-1 models train in
/// parallel (one thread each); stage 2 depends on the CPU model and runs
/// after.
pub fn train_suite(collector: &TrainingCollector, seed: u64) -> TrainingOutcome {
    let stage1 = build_stage1_datasets(collector);
    let stage1_jobs: Vec<_> = stage1
        .iter()
        .map(|(target, data)| (*target, data))
        .collect();
    let mut predictors: Vec<TrainedPredictor> =
        pamdc_simcore::par::parallel_map(stage1_jobs, |(target, data)| {
            let mut rng = RngStream::root(seed).derive(target.paper_name());
            TrainedPredictor::train(target, data, &mut rng)
        });

    let cpu_model = predictors
        .iter()
        .find(|p| p.target == PredictionTarget::VmCpu)
        .expect("stage 1 trains the CPU model");
    let stage2 = build_stage2_datasets(collector, cpu_model);
    let stage2_jobs: Vec<_> = stage2
        .iter()
        .map(|(target, data)| (*target, data))
        .collect();
    let stage2_models: Vec<TrainedPredictor> =
        pamdc_simcore::par::parallel_map(stage2_jobs, |(target, data)| {
            let mut rng = RngStream::root(seed).derive(target.paper_name());
            TrainedPredictor::train(target, data, &mut rng)
        });
    predictors.extend(stage2_models);

    let sample_counts = (collector.vm_ticks.len(), collector.pm_ticks.len());
    let suite = Arc::new(PredictorSuite::from_predictors(predictors));
    let reports = suite
        .reports()
        .map(|(name, rep)| (name.to_string(), rep.clone()))
        .collect();
    TrainingOutcome {
        suite,
        reports,
        sample_counts,
    }
}

/// End-to-end convenience: collect + train with the paper-scale setup.
pub fn train_paper_suite(seed: u64) -> TrainingOutcome {
    let collector = collect_training_data(5, &[0.4, 0.8, 1.2, 1.6], 8, seed);
    train_suite(&collector, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_collector() -> TrainingCollector {
        collect_training_data(3, &[0.5, 1.3], 3, 42)
    }

    #[test]
    fn collection_gathers_samples() {
        let c = quick_collector();
        assert!(c.vm_ticks.len() > 500, "vm ticks {}", c.vm_ticks.len());
        assert!(c.pm_ticks.len() > 100, "pm ticks {}", c.pm_ticks.len());
        // Exploration must visit saturated and unsaturated regimes.
        let sat = c.vm_ticks.iter().filter(|s| s.saturated).count();
        assert!(sat > 0, "need some saturated samples");
        assert!(sat < c.vm_ticks.len(), "need some unsaturated samples");
    }

    #[test]
    fn stage1_datasets_shaped_correctly() {
        let c = quick_collector();
        let ds = build_stage1_datasets(&c);
        assert_eq!(ds.len(), 5);
        for (target, data) in &ds {
            assert!(data.len() > 50, "{}: {}", target.paper_name(), data.len());
            assert_eq!(data.n_features(), target.feature_names().len());
        }
    }

    #[test]
    fn full_training_produces_predictive_models() {
        let c = collect_training_data(4, &[0.5, 1.0, 1.5], 6, 7);
        let out = train_suite(&c, 7);
        assert_eq!(out.reports.len(), 7);
        for (name, rep) in &out.reports {
            assert!(
                rep.correlation > 0.5,
                "{name}: correlation {} too weak (mae {}, n {}/{})",
                rep.correlation,
                rep.mae,
                rep.n_train,
                rep.n_test
            );
        }
        // Memory is the easiest target (near-linear): expect high corr.
        let mem = out
            .reports
            .iter()
            .find(|(n, _)| n == "Predict VM MEM")
            .unwrap();
        assert!(mem.1.correlation > 0.9, "mem corr {}", mem.1.correlation);
    }

    #[test]
    fn training_is_deterministic() {
        let c = quick_collector();
        let a = train_suite(&c, 3);
        let b = train_suite(&c, 3);
        for ((_, ra), (_, rb)) in a.reports.iter().zip(&b.reports) {
            assert_eq!(ra.correlation.to_bits(), rb.correlation.to_bits());
        }
    }
}
