//! Report rendering: aligned text tables and CSV emission for every
//! experiment driver.

use std::fmt::Write as _;
use std::path::Path;

/// The one metric-key sanitizer, shared by the experiment pipeline, the
/// CLI's CSV/JSON emitters and the bench harness: keeps ASCII
/// alphanumerics and `_ . - /` (so bench ids like `group/bench/10x40`
/// survive unchanged) and maps every other character — brackets, spaces,
/// unicode — to `_`, so keys stay shell-, CSV- and JSON-friendly no
/// matter which display name they were derived from.
pub fn metric_key(raw: &str) -> String {
    raw.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-' | '/') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Sanitizes a list of raw metric names through [`metric_key`] and
/// disambiguates collisions: distinct raw names that sanitize to the
/// same key (e.g. `"a b"` and `"a_b"`, or `"x[0]"` and `"x(0)"`) get
/// deterministic `_2`, `_3`, ... suffixes in input order, the first
/// occurrence keeping the bare key. Emitters call this instead of
/// mapping [`metric_key`] per name so two metrics can never silently
/// merge into one CSV/JSON column (the last value overwriting the
/// first).
pub fn disambiguated_metric_keys<S: AsRef<str>>(raw: &[S]) -> Vec<String> {
    let mut used: Vec<String> = Vec::with_capacity(raw.len());
    for name in raw {
        let base = metric_key(name.as_ref());
        let mut candidate = base.clone();
        let mut n = 1usize;
        while used.contains(&candidate) {
            n += 1;
            candidate = format!("{base}_{n}");
        }
        used.push(candidate);
    }
    used
}

/// A simple column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row, padding short rows to the header width.
    ///
    /// A row *wider* than the header is a caller bug — dropping the
    /// extra cells would silently hide data from the rendered report —
    /// so it trips a debug assertion. Release builds still truncate
    /// rather than panic mid-report.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert!(
            cells.len() <= self.header.len(),
            "TextTable row has {} cells but header has {} columns: {cells:?}",
            cells.len(),
            self.header.len(),
        );
        let mut cells = cells;
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Convenience: formats mixed cells.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) {
        self.row(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<width$}", width = widths[i]);
            }
            // Trim trailing spaces for clean diffs.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Renders as CSV (quoting cells containing commas).
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Writes a string artifact under `dir`, creating the directory. Returns
/// the path written. Failures are soft (benches must not die on a
/// read-only filesystem): an `Err` carries the message.
pub fn write_artifact(dir: &Path, name: &str, content: &str) -> Result<std::path::PathBuf, String> {
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let path = dir.join(name);
    std::fs::write(&path, content).map_err(|e| e.to_string())?;
    Ok(path)
}

/// Formats a float with fixed decimals (report helper).
pub fn f(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "22.5".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].starts_with("alpha"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_escapes() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["x,y".into(), "q\"z".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"q\"\"z\""));
    }

    #[test]
    fn short_rows_padded() {
        let mut t = TextTable::new(&["a", "b", "c"]);
        t.row(vec!["1".into()]);
        assert_eq!(t.rows[0].len(), 3);
    }

    #[test]
    #[should_panic(expected = "TextTable row has 3 cells but header has 2 columns")]
    #[cfg(debug_assertions)]
    fn wide_rows_are_a_caller_bug() {
        // Regression: `row` used to silently truncate rows wider than
        // the header, hiding the extra cells from the rendered report.
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into(), "lost".into()]);
    }

    #[test]
    fn float_helper() {
        assert_eq!(f(1.23456, 2), "1.23");
    }

    #[test]
    fn colliding_raw_names_get_distinct_keys() {
        // "a b" and "a_b" both sanitize to "a_b": without
        // disambiguation one column would silently swallow the other.
        let keys = disambiguated_metric_keys(&["a b", "a_b", "a,b", "clean"]);
        assert_eq!(keys, vec!["a_b", "a_b_2", "a_b_3", "clean"]);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), keys.len(), "all keys distinct");
        // Non-colliding inputs pass through metric_key unchanged.
        assert_eq!(
            disambiguated_metric_keys(&["x", "y/z"]),
            vec!["x".to_string(), "y/z".to_string()]
        );
        // A raw name that already looks like a suffixed key cannot be
        // collided into: the suffix search skips occupied candidates.
        let keys = disambiguated_metric_keys(&["k_2", "k", "k"]);
        assert_eq!(keys, vec!["k_2", "k", "k_3"]);
    }
}
