//! The multi-DC simulation loop — Monitor, Analyze, Plan, Execute.
//!
//! One-minute ticks drive the world: workload samples arrive through the
//! gateways, the ground-truth performance model resolves contention and
//! response times per host, monitors record (noisily) what they can see,
//! energy and revenue are billed, and every N ticks the configured
//! [`PlacementPolicy`] re-plans placements, triggering migrations and
//! power management. This is the substrate on which every figure and
//! table of the paper is regenerated.
//!
//! The loop body itself lives in [`crate::engine::Controller`] — a
//! public, resumable stepper. [`SimulationRunner`] is the batch shell
//! every experiment driver goes through: build a controller, step it
//! `duration / tick` times, fold the outcome.

use crate::engine::{Controller, StepDemand};
use crate::policy::PlacementPolicy;
use crate::scenario::Scenario;
use crate::training::TrainingCollector;
use pamdc_econ::billing::ProfitSnapshot;
use pamdc_green::carbon::EnergyBreakdown;
use pamdc_simcore::prelude::*;

/// Simulation-run knobs.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Tick length (default 1 simulated minute).
    pub tick: SimDuration,
    /// Scheduling round cadence, in ticks (the paper: every 10 minutes).
    pub round_every_ticks: u64,
    /// Per-VM gateway queue bound, requests.
    pub max_backlog: f64,
    /// Record full time series (disable for throughput-oriented sweeps).
    pub keep_series: bool,
    /// Minimum ticks between two migrations of the same VM (anti-thrash
    /// cooldown; migrations black out service, so rapid re-migration
    /// compounds queue debt).
    pub migration_cooldown_ticks: u64,
    /// Planning horizon, in ticks, over which the profit function
    /// amortizes each round's placement decisions. `None` (the paper's
    /// implicit choice) uses the round cadence — maximally myopic: a
    /// migration must pay for itself within one round. Energy-chasing
    /// policies (follow-the-sun, price shocks) need a longer horizon,
    /// because a ~10-second migration blackout buys *hours* of cheaper
    /// energy, not ten minutes.
    pub plan_horizon_ticks: Option<u64>,
    /// Buffer a JSONL event trace for this run (span timings + counter
    /// deltas, drained into [`RunOutcome::trace_lines`]). Off by
    /// default; tracing never influences decisions — wall-clock stays
    /// out of every report (see `docs/OBSERVABILITY.md`).
    pub trace: bool,
    /// Emit a stderr heartbeat every simulated hour.
    pub progress: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            tick: SimDuration::from_mins(1),
            round_every_ticks: 10,
            max_backlog: 3000.0,
            keep_series: true,
            migration_cooldown_ticks: 10,
            plan_horizon_ticks: None,
            trace: false,
            progress: false,
        }
    }
}

/// Everything measured over one run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// The policy that drove the run.
    pub policy_name: String,
    /// Scenario label.
    pub scenario_name: String,
    /// Recorded time series (`sla`, `watts`, `active_pms`, `rps`,
    /// `migrations`, and `vm{i}_dc` placement traces).
    pub series: SeriesSet,
    /// Money totals.
    pub profit: ProfitSnapshot,
    /// Wall-clock span simulated.
    pub duration: SimDuration,
    /// Mean SLA over all VM-ticks.
    pub mean_sla: f64,
    /// Time-average facility draw, watts.
    pub avg_watts: f64,
    /// Total energy, watt-hours.
    pub total_wh: f64,
    /// Migrations executed.
    pub migrations: u64,
    /// Requests dropped at gateways.
    pub dropped_requests: f64,
    /// Requests served in total.
    pub served_requests: f64,
    /// Mean count of powered hosts.
    pub avg_active_pms: f64,
    /// Green/brown energy split and emissions over the run.
    pub energy: EnergyBreakdown,
    /// The obs registry flush: every counter, gauge and histogram
    /// bucket of the run's collector, sorted by name (fixed schema;
    /// deterministic at any `--jobs` budget — wall-clock never enters).
    pub obs_metrics: Vec<(String, f64)>,
    /// Buffered JSONL trace (empty unless [`RunConfig::trace`]); the
    /// experiment runner flushes it to the ambient sink in arm order.
    pub trace_lines: Vec<String>,
}

impl RunOutcome {
    /// Net €/h over the run (Table III's "Avg Euro/h").
    pub fn eur_per_hour(&self) -> f64 {
        let h = self.duration.as_hours_f64();
        if h <= 0.0 {
            0.0
        } else {
            self.profit.profit_eur() / h
        }
    }
}

/// Drives one scenario under one policy.
pub struct SimulationRunner {
    scenario: Scenario,
    policy: Box<dyn PlacementPolicy>,
    config: RunConfig,
    collector: Option<TrainingCollector>,
}

impl SimulationRunner {
    /// A runner over a scenario; attach a policy before running.
    pub fn new(scenario: Scenario, policy: Box<dyn PlacementPolicy>) -> Self {
        SimulationRunner {
            scenario,
            policy,
            config: RunConfig::default(),
            collector: None,
        }
    }

    /// Overrides run configuration.
    pub fn config(mut self, config: RunConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches a training-sample collector (used by the Table-I
    /// pipeline).
    pub fn collect_into(mut self, collector: TrainingCollector) -> Self {
        self.collector = Some(collector);
        self
    }

    /// Runs for `duration` and returns the outcome (and the collector, if
    /// one was attached).
    pub fn run(self, duration: SimDuration) -> (RunOutcome, Option<TrainingCollector>) {
        let ticks = duration.ticks(self.config.tick);
        let mut controller =
            Controller::with(self.scenario, self.policy, self.config, self.collector);
        controller.set_progress_total(Some(ticks));
        for _ in 0..ticks {
            controller.step(StepDemand::Source);
        }
        controller.finish(duration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{BestFitPolicy, StaticPolicy};
    use crate::scenario::ScenarioBuilder;
    use pamdc_sched::oracle::TrueOracle;

    fn short_run(policy: Box<dyn PlacementPolicy>) -> RunOutcome {
        let scenario = ScenarioBuilder::paper_intra_dc().vms(3).seed(5).build();
        let (outcome, _) = SimulationRunner::new(scenario, policy).run(SimDuration::from_hours(2));
        outcome
    }

    #[test]
    fn static_run_completes_with_sane_metrics() {
        let o = short_run(Box::new(StaticPolicy(TrueOracle::new())));
        assert_eq!(o.migrations, 0, "static never migrates");
        assert!(o.mean_sla > 0.0 && o.mean_sla <= 1.0, "sla {}", o.mean_sla);
        assert!(o.avg_watts > 0.0, "hosts draw power");
        assert!(o.total_wh > 0.0);
        assert!(o.profit.revenue_eur > 0.0);
        assert!(o.served_requests > 0.0);
        assert!(!o.series.is_empty());
    }

    #[test]
    fn bestfit_run_is_deterministic() {
        let a = short_run(Box::new(BestFitPolicy::new(TrueOracle::new())));
        let b = short_run(Box::new(BestFitPolicy::new(TrueOracle::new())));
        assert_eq!(a.mean_sla.to_bits(), b.mean_sla.to_bits());
        assert_eq!(a.total_wh.to_bits(), b.total_wh.to_bits());
        assert_eq!(a.migrations, b.migrations);
    }

    #[test]
    fn energy_accounting_is_consistent() {
        let o = short_run(Box::new(StaticPolicy(TrueOracle::new())));
        // avg_watts * hours ≈ total_wh.
        let expect = o.avg_watts * o.duration.as_hours_f64();
        assert!(
            (o.total_wh - expect).abs() < 0.02 * expect,
            "wh {} vs avg*h {}",
            o.total_wh,
            expect
        );
        // Ledger energy cost positive and below revenue cap of the run.
        assert!(o.profit.energy_eur > 0.0);
    }

    #[test]
    fn flat_environment_books_all_brown() {
        let o = short_run(Box::new(StaticPolicy(TrueOracle::new())));
        assert_eq!(o.energy.green_wh, 0.0, "paper default has no renewables");
        assert!((o.energy.brown_wh - o.total_wh).abs() < 1e-6 * o.total_wh.max(1.0));
        // Barcelona grid at 270 g/kWh.
        assert!((o.energy.intensity_g_per_kwh() - 270.0).abs() < 1e-6);
        // Energy euros = kWh * flat Barcelona price.
        let expect = o.total_wh / 1000.0 * 0.1513;
        assert!(
            (o.profit.energy_eur - expect).abs() < 1e-9 * expect.max(1.0),
            "booked {} vs flat-price {}",
            o.profit.energy_eur,
            expect
        );
    }

    #[test]
    fn solar_environment_books_green_and_discounts() {
        let run = |solar: bool| {
            let mut builder = ScenarioBuilder::paper_intra_dc().vms(3).seed(5);
            if solar {
                builder = builder
                    .energy(|cluster, env| env.with_solar_everywhere(cluster, 100.0, 1.0, 2, 9));
            }
            let scenario = builder.build();
            let policy = Box::new(StaticPolicy(TrueOracle::new()));
            // Run across local midday (Barcelona +1: 11:00 UTC = noon).
            SimulationRunner::new(scenario, policy)
                .run(SimDuration::from_hours(24))
                .0
        };
        let brown = run(false);
        let green = run(true);
        assert!(
            green.energy.green_wh > 0.0,
            "solar must cover daytime watts"
        );
        assert!(
            green.profit.energy_eur < brown.profit.energy_eur,
            "green energy is cheaper: {} vs {}",
            green.profit.energy_eur,
            brown.profit.energy_eur
        );
        assert!(green.energy.intensity_g_per_kwh() < brown.energy.intensity_g_per_kwh());
        // Same policy, same workload: the physical energy is identical,
        // only its sourcing differs.
        assert!((green.total_wh - brown.total_wh).abs() < 1e-6);
        assert!((green.energy.total_wh() - green.total_wh).abs() < 1e-6);
    }

    #[test]
    fn dynamic_policy_recovers_from_host_failure() {
        // Crash the busiest host 30 minutes in, repaired after 4 hours.
        // A reactive Best-Fit evacuates its VMs at the next round; the
        // static baseline leaves them dark until repair.
        let run = |policy: Box<dyn PlacementPolicy>| {
            let scenario = ScenarioBuilder::paper_intra_dc()
                .vms(3)
                .seed(5)
                .fault(0, SimTime::from_mins(30), SimDuration::from_hours(4))
                .build();
            SimulationRunner::new(scenario, policy)
                .run(SimDuration::from_hours(3))
                .0
        };
        let dynamic = run(Box::new(BestFitPolicy::new(TrueOracle::new())));
        let frozen = run(Box::new(StaticPolicy(TrueOracle::new())));
        assert!(dynamic.migrations > 0, "evacuation requires migrations");
        assert!(
            dynamic.mean_sla > frozen.mean_sla + 0.1,
            "reactive {} must clearly beat static {} under failure",
            dynamic.mean_sla,
            frozen.mean_sla
        );
    }

    #[test]
    fn monitor_dropout_defaults_off_and_preserves_determinism() {
        // dropout_prob = 0 must not consume RNG draws: identical to the
        // baseline run bit for bit.
        let a = short_run(Box::new(BestFitPolicy::new(TrueOracle::new())));
        let mut scenario = ScenarioBuilder::paper_intra_dc().vms(3).seed(5).build();
        scenario.monitor.dropout_prob = 0.0;
        let (b, _) =
            SimulationRunner::new(scenario, Box::new(BestFitPolicy::new(TrueOracle::new())))
                .run(SimDuration::from_hours(2));
        assert_eq!(a.mean_sla.to_bits(), b.mean_sla.to_bits());
        // With heavy dropout the run still completes sanely.
        let mut scenario = ScenarioBuilder::paper_intra_dc().vms(3).seed(5).build();
        scenario.monitor.dropout_prob = 0.5;
        let (c, _) =
            SimulationRunner::new(scenario, Box::new(BestFitPolicy::new(TrueOracle::new())))
                .run(SimDuration::from_hours(2));
        assert!(c.mean_sla > 0.0 && c.mean_sla <= 1.0);
    }

    #[test]
    fn priced_network_books_transit() {
        let run = |eur_per_gb: f64| {
            let mut scenario = ScenarioBuilder::paper_multi_dc().vms(5).seed(5).build();
            scenario.cluster.net.eur_per_gb_interdc = eur_per_gb;
            let policy = Box::new(StaticPolicy(TrueOracle::new()));
            SimulationRunner::new(scenario, policy)
                .run(SimDuration::from_hours(2))
                .0
        };
        let free = run(0.0);
        let priced = run(0.05);
        assert_eq!(free.profit.network_eur, 0.0, "paper network is free");
        // Static multi-DC placement leaves remote flows (5 VMs over 4
        // DCs: at least the 5th VM serves some remote region), so a
        // priced network must book transit.
        assert!(priced.profit.network_eur > 0.0);
        assert!(priced.profit.profit_eur() < free.profit.profit_eur());
        // Identical physics otherwise.
        assert!((priced.total_wh - free.total_wh).abs() < 1e-9);
        assert!((priced.mean_sla - free.mean_sla).abs() < 1e-12);
    }

    #[test]
    fn series_share_time_axis() {
        let o = short_run(Box::new(StaticPolicy(TrueOracle::new())));
        let sla = o.series.get("sla").unwrap();
        let watts = o.series.get("watts").unwrap();
        assert_eq!(sla.len(), watts.len());
        assert_eq!(sla.len(), 120, "one sample per minute for 2 h");
    }
}
