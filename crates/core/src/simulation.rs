//! The multi-DC simulation loop — Monitor, Analyze, Plan, Execute.
//!
//! One-minute ticks drive the world: workload samples arrive through the
//! gateways, the ground-truth performance model resolves contention and
//! response times per host, monitors record (noisily) what they can see,
//! energy and revenue are billed, and every N ticks the configured
//! [`PlacementPolicy`] re-plans placements, triggering migrations and
//! power management. This is the substrate on which every figure and
//! table of the paper is regenerated.

use crate::policy::PlacementPolicy;
use crate::scenario::Scenario;
use crate::training::TrainingCollector;
use pamdc_econ::billing::{ProfitLedger, ProfitSnapshot};
use pamdc_green::carbon::EnergyBreakdown;
use pamdc_infra::gateway::{weighted_transport_secs, FlowDemand, Gateway};
use pamdc_infra::ids::{PmId, VmId};
use pamdc_infra::monitor::{observe, SlidingWindow};
use pamdc_infra::resources::Resources;
use pamdc_perf::contention::{share_proportionally_into, share_work_conserving_into};
use pamdc_perf::demand::{required_resources, OfferedLoad};
use pamdc_perf::rt::evaluate;
use pamdc_perf::sla::SlaFunction;
use pamdc_sched::problem::{HostInfo, Problem, VmInfo};
use pamdc_simcore::prelude::*;
use std::sync::Arc;

/// Simulation-run knobs.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Tick length (default 1 simulated minute).
    pub tick: SimDuration,
    /// Scheduling round cadence, in ticks (the paper: every 10 minutes).
    pub round_every_ticks: u64,
    /// Per-VM gateway queue bound, requests.
    pub max_backlog: f64,
    /// Record full time series (disable for throughput-oriented sweeps).
    pub keep_series: bool,
    /// Minimum ticks between two migrations of the same VM (anti-thrash
    /// cooldown; migrations black out service, so rapid re-migration
    /// compounds queue debt).
    pub migration_cooldown_ticks: u64,
    /// Planning horizon, in ticks, over which the profit function
    /// amortizes each round's placement decisions. `None` (the paper's
    /// implicit choice) uses the round cadence — maximally myopic: a
    /// migration must pay for itself within one round. Energy-chasing
    /// policies (follow-the-sun, price shocks) need a longer horizon,
    /// because a ~10-second migration blackout buys *hours* of cheaper
    /// energy, not ten minutes.
    pub plan_horizon_ticks: Option<u64>,
    /// Buffer a JSONL event trace for this run (span timings + counter
    /// deltas, drained into [`RunOutcome::trace_lines`]). Off by
    /// default; tracing never influences decisions — wall-clock stays
    /// out of every report (see `docs/OBSERVABILITY.md`).
    pub trace: bool,
    /// Emit a stderr heartbeat every simulated hour.
    pub progress: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            tick: SimDuration::from_mins(1),
            round_every_ticks: 10,
            max_backlog: 3000.0,
            keep_series: true,
            migration_cooldown_ticks: 10,
            plan_horizon_ticks: None,
            trace: false,
            progress: false,
        }
    }
}

/// Everything measured over one run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// The policy that drove the run.
    pub policy_name: String,
    /// Scenario label.
    pub scenario_name: String,
    /// Recorded time series (`sla`, `watts`, `active_pms`, `rps`,
    /// `migrations`, and `vm{i}_dc` placement traces).
    pub series: SeriesSet,
    /// Money totals.
    pub profit: ProfitSnapshot,
    /// Wall-clock span simulated.
    pub duration: SimDuration,
    /// Mean SLA over all VM-ticks.
    pub mean_sla: f64,
    /// Time-average facility draw, watts.
    pub avg_watts: f64,
    /// Total energy, watt-hours.
    pub total_wh: f64,
    /// Migrations executed.
    pub migrations: u64,
    /// Requests dropped at gateways.
    pub dropped_requests: f64,
    /// Requests served in total.
    pub served_requests: f64,
    /// Mean count of powered hosts.
    pub avg_active_pms: f64,
    /// Green/brown energy split and emissions over the run.
    pub energy: EnergyBreakdown,
    /// The obs registry flush: every counter, gauge and histogram
    /// bucket of the run's collector, sorted by name (fixed schema;
    /// deterministic at any `--jobs` budget — wall-clock never enters).
    pub obs_metrics: Vec<(String, f64)>,
    /// Buffered JSONL trace (empty unless [`RunConfig::trace`]); the
    /// experiment runner flushes it to the ambient sink in arm order.
    pub trace_lines: Vec<String>,
}

impl RunOutcome {
    /// Net €/h over the run (Table III's "Avg Euro/h").
    pub fn eur_per_hour(&self) -> f64 {
        let h = self.duration.as_hours_f64();
        if h <= 0.0 {
            0.0
        } else {
            self.profit.profit_eur() / h
        }
    }
}

/// Reusable per-tick buffers for the per-host contention loop. One
/// instance lives across the whole run, so steady-state ticks allocate
/// nothing: every `Vec` is cleared and refilled in place.
#[derive(Default)]
struct TickScratch {
    /// VMs hosted on the PM being processed.
    hosted: Vec<VmId>,
    /// The subset of `hosted` actually serving this tick.
    serving: Vec<VmId>,
    /// Believed demand per serving VM (slot-indexed like `serving`).
    demands: Vec<Resources>,
    /// Proportional-share grants per serving VM.
    granted: Vec<Resources>,
    /// Work-conserving burst capacity per serving VM.
    burst: Vec<Resources>,
}

/// Drives one scenario under one policy.
pub struct SimulationRunner {
    scenario: Scenario,
    policy: Box<dyn PlacementPolicy>,
    config: RunConfig,
    collector: Option<TrainingCollector>,
}

impl SimulationRunner {
    /// A runner over a scenario; attach a policy before running.
    pub fn new(scenario: Scenario, policy: Box<dyn PlacementPolicy>) -> Self {
        SimulationRunner {
            scenario,
            policy,
            config: RunConfig::default(),
            collector: None,
        }
    }

    /// Overrides run configuration.
    pub fn config(mut self, config: RunConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches a training-sample collector (used by the Table-I
    /// pipeline).
    pub fn collect_into(mut self, collector: TrainingCollector) -> Self {
        self.collector = Some(collector);
        self
    }

    /// Runs for `duration` and returns the outcome (and the collector, if
    /// one was attached).
    pub fn run(mut self, duration: SimDuration) -> (RunOutcome, Option<TrainingCollector>) {
        let scenario = &mut self.scenario;
        let cfg = &self.config;
        let n_vms = scenario.cluster.vm_count();
        let tick_secs = cfg.tick.as_secs_f64();
        let policy_name = self.policy.name();

        // Fresh per-run collector, installed thread-locally for the
        // whole run (and inherited by `simcore::par` workers). Nested
        // runs — a training simulation inside an arm — stack their own
        // collectors, so counters never cross runs. Timing (and hence
        // any wall-clock read) only exists when tracing.
        let obs = Arc::new(pamdc_obs::Collector::new(cfg.trace));
        let _obs_guard = pamdc_obs::CollectorGuard::install(obs.clone());
        if cfg.trace {
            obs.push_event(pamdc_obs::trace::run_start_line(
                &scenario.name,
                &policy_name,
            ));
        }
        let mut counter_snapshot = obs.counter_snapshot();

        let root = RngStream::root(scenario.seed);
        let mut monitor_rng = root.derive("monitor");
        let rt_rng = root.derive("rt-jitter");

        let mut gateway = Gateway::new(n_vms, cfg.max_backlog);
        let mut windows: Vec<SlidingWindow> = (0..n_vms)
            .map(|_| SlidingWindow::new(scenario.monitor.window_len))
            .collect();

        let mut ledger = ProfitLedger::new();
        let mut series = SeriesSet::new();
        let mut sla_stats = OnlineStats::new();
        let mut watts_stats = OnlineStats::new();
        let mut active_stats = OnlineStats::new();
        let mut migrations: u64 = 0;
        let mut total_wh = 0.0;
        let mut served_total = 0.0;
        let mut last_migration_tick: Vec<Option<u64>> = vec![None; n_vms];
        let mut energy_breakdown = EnergyBreakdown::new();
        let n_dcs = scenario.cluster.dc_count();
        // Facility draw per DC: this tick's accumulator and the previous
        // tick's value (what the scheduler prices marginal hosts against).
        let mut dc_tick_watts: Vec<f64> = vec![0.0; n_dcs];
        let mut dc_draw_w: Vec<f64> = vec![0.0; n_dcs];

        // Per-tick scratch buffers (no per-tick allocation in the loop).
        let mut flows: Vec<Vec<FlowDemand>> = vec![Vec::new(); n_vms];
        let mut loads: Vec<OfferedLoad> = vec![OfferedLoad::default(); n_vms];
        let mut required: Vec<Resources> = vec![Resources::ZERO; n_vms];
        let mut scratch = TickScratch::default();
        let slas: Vec<SlaFunction> = (0..n_vms)
            .map(|i| {
                let spec = &scenario.cluster.vm(VmId::from_index(i)).spec;
                SlaFunction::new(spec.rt0_secs, spec.alpha)
            })
            .collect();
        // Placement-trace series keys, formatted once instead of per
        // VM per tick.
        let vm_dc_keys: Vec<String> = (0..n_vms).map(|vm| format!("vm{vm}_dc")).collect();
        // Round-problem constants: shared by refcount, never cloned per
        // round (the network's latency matrix is the big one).
        let round_net = Arc::new(scenario.cluster.net.clone());
        let round_billing = Arc::new(scenario.billing.clone());

        let ticks = duration.ticks(cfg.tick);
        let mut next_fault = 0usize;
        let mut next_profile_change = 0usize;
        for tick_idx in 0..ticks {
            // The `tick` span tiles into the MAPE phases below (world /
            // monitor / analyze / plan / execute) — `pamdc trace
            // summarize` measures its coverage against their sum. The
            // guard closes before the trace flush so the tick's own
            // stats drain with the tick's events.
            let tick_span = pamdc_obs::span!("tick");
            obs.add(pamdc_obs::Counter::SimTicks, 1);
            let now = SimTime::ZERO + cfg.tick * tick_idx;
            let tick_end = now + cfg.tick;

            let world_span = pamdc_obs::span!("world");
            // ---------------- Failure injection ----------------
            while next_fault < scenario.faults.len() && scenario.faults[next_fault].at <= now {
                let f = scenario.faults[next_fault];
                scenario.cluster.fail_pm(f.pm, now, f.repair_after);
                next_fault += 1;
            }

            // ---------------- Software updates ----------------
            while next_profile_change < scenario.profile_changes.len()
                && scenario.profile_changes[next_profile_change].at <= now
            {
                let c = scenario.profile_changes[next_profile_change];
                scenario.perf_profiles[c.vm] = c.profile;
                next_profile_change += 1;
            }

            scenario.cluster.tick(now);
            drop(world_span);

            let monitor_span = pamdc_obs::span!("monitor");
            // ---------------- Load sampling ----------------
            let mut rps_total = 0.0;
            for vm in 0..n_vms {
                let samples = scenario.workload.sample(vm, now);
                flows[vm].clear();
                flows[vm].extend(samples.iter().map(|s| FlowDemand {
                    source: pamdc_infra::ids::LocationId(s.region as u16 as u32),
                    req_per_sec: s.rps,
                    kb_per_req: s.kb_out_per_req,
                    cpu_ms_per_req: s.cpu_ms_per_req,
                }));
                let rps: f64 = samples.iter().map(|s| s.rps).sum();
                rps_total += rps;
                let wavg = |f: &dyn Fn(&pamdc_workload::generator::FlowSample) -> f64| {
                    if rps > 0.0 {
                        samples.iter().map(|s| f(s) * s.rps).sum::<f64>() / rps
                    } else {
                        0.0
                    }
                };
                loads[vm] = OfferedLoad {
                    rps,
                    kb_in_per_req: wavg(&|s| s.kb_in_per_req),
                    kb_out_per_req: wavg(&|s| s.kb_out_per_req),
                    cpu_ms_per_req: wavg(&|s| s.cpu_ms_per_req),
                    backlog: gateway.backlog(VmId::from_index(vm)),
                };
                required[vm] =
                    required_resources(&loads[vm], &scenario.perf_profiles[vm], tick_secs);
            }

            // ---------------- Inter-DC link accounting ----------------
            // Remote client flows cross the provider network: they load
            // the links (slowing concurrent migrations) and, on a priced
            // network, pay per-GB transit.
            scenario.cluster.link_load.clear();
            let mut client_transfer_eur = 0.0;
            for vm in 0..n_vms {
                let Some(pm) = scenario.cluster.placement(VmId::from_index(vm)) else {
                    continue;
                };
                let loc = scenario.cluster.location_of_pm(pm);
                for &f in &flows[vm] {
                    if f.source == loc {
                        continue;
                    }
                    let kb_per_sec = f.req_per_sec * (f.kb_per_req + loads[vm].kb_in_per_req);
                    scenario
                        .cluster
                        .link_load
                        .add_client_gbps(f.source, loc, kb_per_sec * 8e-6);
                    client_transfer_eur += scenario.cluster.net.transfer_cost_eur(
                        kb_per_sec * tick_secs * 1e-6,
                        f.source,
                        loc,
                    );
                }
            }
            ledger.book_network(client_transfer_eur);
            drop(monitor_span);

            let analyze_span = pamdc_obs::span!("analyze");
            // ---------------- Per-host contention + perf ----------------
            let mut tick_sla_sum = 0.0;
            let mut tick_sla_n = 0usize;
            let mut tick_watts = 0.0;
            dc_tick_watts.fill(0.0);
            for pm_idx in 0..scenario.cluster.pm_count() {
                let pm_id = PmId::from_index(pm_idx);
                scratch.hosted.clear();
                scratch
                    .hosted
                    .extend_from_slice(scenario.cluster.pm(pm_id).hosted());
                let host_on = scenario.cluster.pm(pm_id).is_on();
                let location = scenario.cluster.location_of_pm(pm_id);

                // Per-VM blackout fraction of this tick (1.0 = fully
                // dark). A migration completing mid-tick lets the VM
                // serve the remaining fraction.
                let blackout = |v: VmId| -> f64 {
                    if !host_on {
                        return 1.0;
                    }
                    scenario
                        .cluster
                        .in_flight()
                        .iter()
                        .find(|m| m.vm == v)
                        .map(|m| m.blackout_fraction(now, tick_end))
                        .unwrap_or(0.0)
                };
                // Serving VMs: host on and not dark for the whole tick.
                scratch.serving.clear();
                scratch.serving.extend(
                    scratch
                        .hosted
                        .iter()
                        .copied()
                        .filter(|&v| blackout(v) < 1.0),
                );
                let serving = &scratch.serving;

                scratch.demands.clear();
                scratch
                    .demands
                    .extend(serving.iter().map(|v| required[v.index()]));
                let overhead = scenario.cluster.pm(pm_id).virt_overhead_cpu();
                let mut cap = scenario.cluster.pm(pm_id).spec.capacity;
                cap.cpu = (cap.cpu - overhead).max(1.0);
                share_proportionally_into(&scratch.demands, cap, &mut scratch.granted);
                share_work_conserving_into(&scratch.demands, cap, &mut scratch.burst);
                let granted = &scratch.granted;
                let burst = &scratch.burst;

                let mut pm_cpu_used = overhead.min(scenario.cluster.pm(pm_id).spec.capacity.cpu);
                let mut pm_sum_vm_cpu_obs = 0.0;
                let mut pm_sum_rps = 0.0;

                for (slot, &vm_id) in serving.iter().enumerate() {
                    let vm = vm_id.index();
                    let mut jitter = rt_rng.derive_indexed("vm-tick", (vm as u64) << 40 | tick_idx);
                    let outcome = evaluate(
                        &loads[vm],
                        &scenario.perf_profiles[vm],
                        &required[vm],
                        &granted[slot],
                        &burst[slot],
                        &scenario.rt_cfg,
                        tick_secs,
                        Some(&mut jitter),
                    );
                    let transport =
                        weighted_transport_secs(&flows[vm], location, &scenario.cluster.net);
                    let rt_total = outcome.rt_process_secs + transport;
                    // Pro-rate for any partial-tick migration blackout.
                    let avail = 1.0 - blackout(vm_id);
                    let sla = slas[vm].fulfillment(rt_total) * avail;

                    // Gateway bookkeeping.
                    let arrived = loads[vm].rps * tick_secs;
                    let served = outcome.served_rps * tick_secs * avail;
                    gateway.settle(vm_id, arrived, served);
                    served_total += served;

                    // Monitoring. A dropped sample never reaches the
                    // scheduler's sizing window (the short-circuit keeps
                    // the RNG stream untouched when dropout is off).
                    let obs = observe(&outcome.used, &scenario.monitor, &mut monitor_rng);
                    let dropped = scenario.monitor.dropout_prob > 0.0
                        && monitor_rng.chance(scenario.monitor.dropout_prob);
                    if !dropped {
                        windows[vm].push(obs);
                    }
                    pm_cpu_used += outcome.used.cpu;
                    pm_sum_vm_cpu_obs += obs.cpu;
                    pm_sum_rps += loads[vm].rps;

                    // Billing.
                    ledger.book_revenue(&scenario.billing, sla, cfg.tick);
                    tick_sla_sum += sla;
                    tick_sla_n += 1;
                    sla_stats.push(sla);
                    // TLS free fns here: `obs` is shadowed by the
                    // monitoring sample above.
                    pamdc_obs::metrics::observe(pamdc_obs::Hist::SimVmSla, sla);
                    if sla < 1.0 - 1e-9 {
                        pamdc_obs::metrics::add(pamdc_obs::Counter::SimSlaViolations, 1);
                    }

                    // Training capture.
                    if let Some(col) = self.collector.as_mut() {
                        let saturated =
                            outcome.served_rps < loads[vm].total_rps(tick_secs) * 0.98 - 1e-9;
                        let mem_ratio = if required[vm].mem_mb > 0.0 {
                            (granted[slot].mem_mb / required[vm].mem_mb).min(1.0)
                        } else {
                            1.0
                        };
                        col.record_vm_tick(
                            &loads[vm],
                            &obs,
                            saturated,
                            granted[slot].cpu,
                            mem_ratio,
                            transport,
                            outcome.rt_process_secs,
                            sla,
                        );
                    }
                }

                // Fully blacked-out VMs (in-flight all tick, or host
                // down/booting): they earn nothing and their arrivals
                // pile into the gateway queue.
                for &vm_id in &scratch.hosted {
                    if serving.contains(&vm_id) {
                        continue;
                    }
                    let vm = vm_id.index();
                    let arrived = loads[vm].rps * tick_secs;
                    gateway.settle(vm_id, arrived, 0.0);
                    ledger.book_revenue(&scenario.billing, 0.0, cfg.tick);
                    tick_sla_n += 1;
                    sla_stats.push(0.0);
                    obs.observe(pamdc_obs::Hist::SimVmSla, 0.0);
                    obs.add(pamdc_obs::Counter::SimSlaViolations, 1);
                }

                // Power + energy (cost booked per-DC after the host loop,
                // so green production is shared DC-wide, not per host).
                let watts = scenario.cluster.pm(pm_id).facility_watts(pm_cpu_used);
                tick_watts += watts;
                dc_tick_watts[scenario.cluster.dc_of_pm(pm_id).index()] += watts;
                total_wh += watts * cfg.tick.as_hours_f64();

                if let Some(col) = self.collector.as_mut() {
                    if !serving.is_empty() {
                        let pm_cpu_obs = observe(
                            &Resources::new(pm_cpu_used, 0.0, 0.0, 0.0),
                            &scenario.monitor,
                            &mut monitor_rng,
                        )
                        .cpu;
                        col.record_pm_tick(
                            serving.len(),
                            pm_sum_vm_cpu_obs,
                            pm_sum_rps,
                            pm_cpu_obs,
                        );
                    }
                }
            }

            // ---------------- Energy billing (per DC) ----------------
            let mut tick_green_w = 0.0;
            for (site, &watts) in scenario.energy.sites.iter().zip(&dc_tick_watts) {
                tick_green_w += site.split(now, watts).green_w;
                let cost = site.book(now, watts, cfg.tick, &mut energy_breakdown);
                ledger.book_energy(cost);
            }
            dc_draw_w.copy_from_slice(&dc_tick_watts);

            // ---------------- Series ----------------
            let active = scenario.cluster.powered_pm_count();
            active_stats.push(active as f64);
            watts_stats.push(tick_watts);
            if cfg.keep_series {
                let mean_sla_tick = if tick_sla_n > 0 {
                    tick_sla_sum / tick_sla_n as f64
                } else {
                    1.0
                };
                series.record("sla", now, mean_sla_tick);
                series.record("watts", now, tick_watts);
                series.record("green_watts", now, tick_green_w);
                series.record("active_pms", now, active as f64);
                series.record("rps", now, rps_total);
                series.record("migrations", now, migrations as f64);
                for (vm, key) in vm_dc_keys.iter().enumerate() {
                    if let Some(pm) = scenario.cluster.placement(VmId::from_index(vm)) {
                        series.record(key, now, scenario.cluster.dc_of_pm(pm).index() as f64);
                    }
                }
            }
            drop(analyze_span);

            // ---------------- Plan + Execute ----------------
            if cfg.round_every_ticks > 0
                && tick_idx % cfg.round_every_ticks == cfg.round_every_ticks - 1
            {
                obs.add(pamdc_obs::Counter::SimRounds, 1);
                let plan_span = pamdc_obs::span!("plan");
                let problem = build_problem(
                    scenario,
                    tick_end,
                    &loads,
                    &flows,
                    &windows,
                    &gateway,
                    &dc_draw_w,
                    cfg,
                    &round_net,
                    &round_billing,
                );
                let schedule = self.policy.decide(&problem);
                schedule.validate(&problem);
                drop(plan_span);
                let execute_span = pamdc_obs::span!("execute");
                for (vi, &target) in schedule.assignment.iter().enumerate() {
                    let vm_id = problem.vms[vi].id;
                    if scenario.cluster.vm(vm_id).is_migrating() {
                        continue;
                    }
                    // Anti-thrash cooldown.
                    if last_migration_tick[vm_id.index()]
                        .is_some_and(|t| tick_idx - t < cfg.migration_cooldown_ticks)
                    {
                        continue;
                    }
                    let from_loc = scenario.cluster.location_of_vm(vm_id);
                    if scenario.cluster.placement(vm_id) != Some(target)
                        && scenario.cluster.migrate(vm_id, target, tick_end).is_some()
                    {
                        migrations += 1;
                        obs.add(pamdc_obs::Counter::SimMigrations, 1);
                        last_migration_tick[vm_id.index()] = Some(tick_idx);
                        ledger.book_migration(&scenario.billing);
                        // Image shipment pays transit on a priced network.
                        if let Some(from) = from_loc {
                            let to_loc = scenario.cluster.location_of_pm(target);
                            let gb = scenario.cluster.vm(vm_id).spec.image_size_mb / 1000.0;
                            ledger.book_network(
                                scenario.cluster.net.transfer_cost_eur(gb, from, to_loc),
                            );
                        }
                    }
                }
                scenario.cluster.power_off_idle(tick_end, &[]);
                debug_assert!({
                    scenario.cluster.check_invariants();
                    true
                });
                drop(execute_span);
            }

            // ---------------- Trace flush + heartbeat ----------------
            drop(tick_span);
            if cfg.trace {
                for (path, stat) in obs.take_spans() {
                    obs.push_event(pamdc_obs::trace::span_line(
                        tick_idx,
                        &path,
                        stat.count,
                        stat.total_ns,
                    ));
                }
                let snap = obs.counter_snapshot();
                for (i, c) in pamdc_obs::Counter::ALL.iter().enumerate() {
                    if snap[i] != counter_snapshot[i] {
                        obs.push_event(pamdc_obs::trace::counter_line(tick_idx, c.name(), snap[i]));
                    }
                }
                counter_snapshot = snap;
            }
            if cfg.progress && (tick_idx + 1) % 60 == 0 {
                pamdc_obs::log::progress(format_args!(
                    "[{}] tick {}/{} migrations={} active_pms={}",
                    scenario.name,
                    tick_idx + 1,
                    ticks,
                    migrations,
                    scenario.cluster.powered_pm_count(),
                ));
            }
        }

        let dropped: f64 = (0..n_vms)
            .map(|vm| gateway.dropped_total(VmId::from_index(vm)))
            .sum();
        obs.gauge_set(
            pamdc_obs::Gauge::SimActivePms,
            scenario.cluster.powered_pm_count() as f64,
        );
        let pending_vms = (0..n_vms)
            .filter(|&vm| gateway.backlog(VmId::from_index(vm)) > 0.0)
            .count();
        obs.gauge_set(pamdc_obs::Gauge::SimPendingVms, pending_vms as f64);
        if cfg.trace {
            obs.push_event(pamdc_obs::trace::run_end_line(ticks));
        }
        let obs_metrics = obs.run_metrics();
        let trace_lines = if cfg.trace {
            obs.take_events()
        } else {
            Vec::new()
        };
        let outcome = RunOutcome {
            policy_name: self.policy.name(),
            scenario_name: scenario.name.clone(),
            series,
            profit: ledger.snapshot(),
            duration,
            mean_sla: sla_stats.mean(),
            avg_watts: watts_stats.mean(),
            total_wh,
            migrations,
            dropped_requests: dropped,
            served_requests: served_total,
            avg_active_pms: active_stats.mean(),
            energy: energy_breakdown,
            obs_metrics,
            trace_lines,
        };
        (outcome, self.collector)
    }
}

/// Snapshot the world into a scheduling [`Problem`]. `net` and
/// `billing` are the run-constant shared handles — every round's problem
/// bumps their refcount instead of cloning them.
#[allow(clippy::too_many_arguments)]
fn build_problem(
    scenario: &Scenario,
    now: SimTime,
    loads: &[OfferedLoad],
    flows: &[Vec<FlowDemand>],
    windows: &[SlidingWindow],
    gateway: &Gateway,
    dc_draw_w: &[f64],
    cfg: &RunConfig,
    net: &Arc<pamdc_infra::network::NetworkModel>,
    billing: &Arc<pamdc_econ::billing::BillingPolicy>,
) -> Problem {
    let cluster = &scenario.cluster;
    let hosts: Vec<HostInfo> = cluster
        .pms()
        .iter()
        .map(|pm| {
            let boot_penalty = match pm.state() {
                pamdc_infra::pm::PmState::On => SimDuration::ZERO,
                pamdc_infra::pm::PmState::Booting { until } => until - now,
                // A crashed host serves nothing until repaired AND
                // rebooted — the penalty that makes policies evacuate it.
                pamdc_infra::pm::PmState::Failed { until } => (until - now) + pm.spec.boot_time,
                _ => pm.spec.boot_time,
            };
            let dc_idx = pm.dc.index();
            // Quote the price of adding roughly one loaded host's draw on
            // top of what the DC burns now: green headroom makes the
            // quote collapse to the green marginal, saturation restores
            // the grid price.
            let quoted = scenario.energy.quoted_price_eur_kwh(
                dc_idx,
                now,
                dc_draw_w[dc_idx],
                pm.spec.power.facility_watts(100.0),
            );
            HostInfo {
                id: pm.id,
                dc: pm.dc,
                location: cluster.location_of_pm(pm.id),
                capacity: pm.spec.capacity,
                power: pm.spec.power.clone(),
                energy_eur_kwh: quoted,
                virt_overhead_cpu_per_vm: pm.spec.virt_overhead_cpu_per_vm,
                fixed_demand: Resources::ZERO,
                fixed_vm_count: 0,
                powered_on: pm.is_schedulable(),
                boot_penalty,
            }
        })
        .collect();

    let vms: Vec<VmInfo> = (0..cluster.vm_count())
        .map(|vm| {
            let vm_id = VmId::from_index(vm);
            let spec = &cluster.vm(vm_id).spec;
            let current_pm = cluster.placement(vm_id);
            let mut load = loads[vm];
            load.backlog = gateway.backlog(vm_id);
            VmInfo {
                id: vm_id,
                load,
                flows: flows[vm].clone(),
                sla: SlaFunction::new(spec.rt0_secs, spec.alpha),
                image_size_mb: spec.image_size_mb,
                perf: scenario.perf_profiles[vm],
                current_pm,
                current_location: current_pm.map(|pm| cluster.location_of_pm(pm)),
                observed_usage: windows[vm].mean(),
            }
        })
        .collect();

    let horizon = cfg.tick * cfg.plan_horizon_ticks.unwrap_or(cfg.round_every_ticks);
    // Stickiness stays pinned to the round cadence even under a longer
    // planning horizon — it damps per-round churn, not per-horizon value.
    let round_span = cfg.tick * cfg.round_every_ticks;
    Problem {
        vms,
        hosts,
        net: Arc::clone(net),
        billing: Arc::clone(billing),
        horizon,
        // 5% of one round's revenue: big enough to damp noise-driven
        // churn, small enough to let real gains through.
        stickiness_eur: scenario.billing.revenue(1.0, round_span) * 0.05,
        host_index_cache: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{BestFitPolicy, StaticPolicy};
    use crate::scenario::ScenarioBuilder;
    use pamdc_sched::oracle::TrueOracle;

    fn short_run(policy: Box<dyn PlacementPolicy>) -> RunOutcome {
        let scenario = ScenarioBuilder::paper_intra_dc().vms(3).seed(5).build();
        let (outcome, _) = SimulationRunner::new(scenario, policy).run(SimDuration::from_hours(2));
        outcome
    }

    #[test]
    fn static_run_completes_with_sane_metrics() {
        let o = short_run(Box::new(StaticPolicy(TrueOracle::new())));
        assert_eq!(o.migrations, 0, "static never migrates");
        assert!(o.mean_sla > 0.0 && o.mean_sla <= 1.0, "sla {}", o.mean_sla);
        assert!(o.avg_watts > 0.0, "hosts draw power");
        assert!(o.total_wh > 0.0);
        assert!(o.profit.revenue_eur > 0.0);
        assert!(o.served_requests > 0.0);
        assert!(!o.series.is_empty());
    }

    #[test]
    fn bestfit_run_is_deterministic() {
        let a = short_run(Box::new(BestFitPolicy::new(TrueOracle::new())));
        let b = short_run(Box::new(BestFitPolicy::new(TrueOracle::new())));
        assert_eq!(a.mean_sla.to_bits(), b.mean_sla.to_bits());
        assert_eq!(a.total_wh.to_bits(), b.total_wh.to_bits());
        assert_eq!(a.migrations, b.migrations);
    }

    #[test]
    fn energy_accounting_is_consistent() {
        let o = short_run(Box::new(StaticPolicy(TrueOracle::new())));
        // avg_watts * hours ≈ total_wh.
        let expect = o.avg_watts * o.duration.as_hours_f64();
        assert!(
            (o.total_wh - expect).abs() < 0.02 * expect,
            "wh {} vs avg*h {}",
            o.total_wh,
            expect
        );
        // Ledger energy cost positive and below revenue cap of the run.
        assert!(o.profit.energy_eur > 0.0);
    }

    #[test]
    fn flat_environment_books_all_brown() {
        let o = short_run(Box::new(StaticPolicy(TrueOracle::new())));
        assert_eq!(o.energy.green_wh, 0.0, "paper default has no renewables");
        assert!((o.energy.brown_wh - o.total_wh).abs() < 1e-6 * o.total_wh.max(1.0));
        // Barcelona grid at 270 g/kWh.
        assert!((o.energy.intensity_g_per_kwh() - 270.0).abs() < 1e-6);
        // Energy euros = kWh * flat Barcelona price.
        let expect = o.total_wh / 1000.0 * 0.1513;
        assert!(
            (o.profit.energy_eur - expect).abs() < 1e-9 * expect.max(1.0),
            "booked {} vs flat-price {}",
            o.profit.energy_eur,
            expect
        );
    }

    #[test]
    fn solar_environment_books_green_and_discounts() {
        let run = |solar: bool| {
            let mut builder = ScenarioBuilder::paper_intra_dc().vms(3).seed(5);
            if solar {
                builder = builder
                    .energy(|cluster, env| env.with_solar_everywhere(cluster, 100.0, 1.0, 2, 9));
            }
            let scenario = builder.build();
            let policy = Box::new(StaticPolicy(TrueOracle::new()));
            // Run across local midday (Barcelona +1: 11:00 UTC = noon).
            SimulationRunner::new(scenario, policy)
                .run(SimDuration::from_hours(24))
                .0
        };
        let brown = run(false);
        let green = run(true);
        assert!(
            green.energy.green_wh > 0.0,
            "solar must cover daytime watts"
        );
        assert!(
            green.profit.energy_eur < brown.profit.energy_eur,
            "green energy is cheaper: {} vs {}",
            green.profit.energy_eur,
            brown.profit.energy_eur
        );
        assert!(green.energy.intensity_g_per_kwh() < brown.energy.intensity_g_per_kwh());
        // Same policy, same workload: the physical energy is identical,
        // only its sourcing differs.
        assert!((green.total_wh - brown.total_wh).abs() < 1e-6);
        assert!((green.energy.total_wh() - green.total_wh).abs() < 1e-6);
    }

    #[test]
    fn dynamic_policy_recovers_from_host_failure() {
        // Crash the busiest host 30 minutes in, repaired after 4 hours.
        // A reactive Best-Fit evacuates its VMs at the next round; the
        // static baseline leaves them dark until repair.
        let run = |policy: Box<dyn PlacementPolicy>| {
            let scenario = ScenarioBuilder::paper_intra_dc()
                .vms(3)
                .seed(5)
                .fault(0, SimTime::from_mins(30), SimDuration::from_hours(4))
                .build();
            SimulationRunner::new(scenario, policy)
                .run(SimDuration::from_hours(3))
                .0
        };
        let dynamic = run(Box::new(BestFitPolicy::new(TrueOracle::new())));
        let frozen = run(Box::new(StaticPolicy(TrueOracle::new())));
        assert!(dynamic.migrations > 0, "evacuation requires migrations");
        assert!(
            dynamic.mean_sla > frozen.mean_sla + 0.1,
            "reactive {} must clearly beat static {} under failure",
            dynamic.mean_sla,
            frozen.mean_sla
        );
    }

    #[test]
    fn monitor_dropout_defaults_off_and_preserves_determinism() {
        // dropout_prob = 0 must not consume RNG draws: identical to the
        // baseline run bit for bit.
        let a = short_run(Box::new(BestFitPolicy::new(TrueOracle::new())));
        let mut scenario = ScenarioBuilder::paper_intra_dc().vms(3).seed(5).build();
        scenario.monitor.dropout_prob = 0.0;
        let (b, _) =
            SimulationRunner::new(scenario, Box::new(BestFitPolicy::new(TrueOracle::new())))
                .run(SimDuration::from_hours(2));
        assert_eq!(a.mean_sla.to_bits(), b.mean_sla.to_bits());
        // With heavy dropout the run still completes sanely.
        let mut scenario = ScenarioBuilder::paper_intra_dc().vms(3).seed(5).build();
        scenario.monitor.dropout_prob = 0.5;
        let (c, _) =
            SimulationRunner::new(scenario, Box::new(BestFitPolicy::new(TrueOracle::new())))
                .run(SimDuration::from_hours(2));
        assert!(c.mean_sla > 0.0 && c.mean_sla <= 1.0);
    }

    #[test]
    fn priced_network_books_transit() {
        let run = |eur_per_gb: f64| {
            let mut scenario = ScenarioBuilder::paper_multi_dc().vms(5).seed(5).build();
            scenario.cluster.net.eur_per_gb_interdc = eur_per_gb;
            let policy = Box::new(StaticPolicy(TrueOracle::new()));
            SimulationRunner::new(scenario, policy)
                .run(SimDuration::from_hours(2))
                .0
        };
        let free = run(0.0);
        let priced = run(0.05);
        assert_eq!(free.profit.network_eur, 0.0, "paper network is free");
        // Static multi-DC placement leaves remote flows (5 VMs over 4
        // DCs: at least the 5th VM serves some remote region), so a
        // priced network must book transit.
        assert!(priced.profit.network_eur > 0.0);
        assert!(priced.profit.profit_eur() < free.profit.profit_eur());
        // Identical physics otherwise.
        assert!((priced.total_wh - free.total_wh).abs() < 1e-9);
        assert!((priced.mean_sla - free.mean_sla).abs() < 1e-12);
    }

    #[test]
    fn series_share_time_axis() {
        let o = short_run(Box::new(StaticPolicy(TrueOracle::new())));
        let sla = o.series.get("sla").unwrap();
        let watts = o.series.get("watts").unwrap();
        assert_eq!(sla.len(), watts.len());
        assert_eq!(sla.len(), 120, "one sample per minute for 2 h");
    }
}
