//! The step-wise MAPE engine — one public, resumable tick at a time.
//!
//! [`Controller`] owns the whole per-run state of the simulation loop
//! (world, RNG streams, gateways, monitors, ledgers) and exposes it as a
//! stepper: `step()` advances exactly one tick and returns a
//! [`TickOutcome`], `snapshot()`/`restore()` freeze and resume the
//! mutable state mid-run, and `finish()` folds everything into the same
//! [`RunOutcome`] the batch path always produced. The batch
//! [`SimulationRunner`](crate::simulation::SimulationRunner) is now a
//! thin `for _ in 0..ticks { controller.step(..) }` shell, so every
//! experiment driver and the `pamdc serve` daemon run the identical
//! loop body — bit for bit.

use crate::policy::PlacementPolicy;
use crate::scenario::Scenario;
use crate::simulation::{RunConfig, RunOutcome};
use crate::training::TrainingCollector;
use pamdc_econ::billing::ProfitLedger;
use pamdc_green::carbon::EnergyBreakdown;
use pamdc_infra::gateway::{weighted_transport_secs, FlowDemand, Gateway};
use pamdc_infra::ids::{PmId, VmId};
use pamdc_infra::monitor::{observe, SlidingWindow};
use pamdc_infra::resources::Resources;
use pamdc_perf::contention::{share_proportionally_into, share_work_conserving_into};
use pamdc_perf::demand::{required_resources, OfferedLoad};
use pamdc_perf::rt::evaluate;
use pamdc_perf::sla::SlaFunction;
use pamdc_sched::problem::{HostInfo, Problem, VmInfo};
use pamdc_simcore::prelude::*;
use pamdc_workload::generator::FlowSample;
use std::sync::Arc;

/// Where one tick's demand comes from.
#[derive(Clone, Copy)]
pub enum StepDemand<'a> {
    /// Sample the scenario's own [`DemandSource`]
    /// (`scenario.workload.sample(vm, now)`) — the batch path.
    Source,
    /// Explicit per-service flow samples for this tick (`flows[vm]`),
    /// e.g. one complete tick ingested from a live feed. Must hold one
    /// entry per VM.
    Flows(&'a [Vec<FlowSample>]),
}

/// How much work a scheduling round is allowed: the serve daemon's
/// three-rung degradation ladder. Placement itself is never skipped —
/// the rungs only shave the consolidation pass, cheapest first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RoundFidelity {
    /// The policy's full plan ([`PlacementPolicy::decide`]).
    ///
    /// [`PlacementPolicy::decide`]: crate::policy::PlacementPolicy::decide
    Full,
    /// Middle rung: consolidation still runs but on a shrunken
    /// move budget ([`PlacementPolicy::decide_trimmed`]).
    ///
    /// [`PlacementPolicy::decide_trimmed`]: crate::policy::PlacementPolicy::decide_trimmed
    Trimmed,
    /// Bottom rung: placement only, no consolidation at all
    /// ([`PlacementPolicy::decide_degraded`]).
    ///
    /// [`PlacementPolicy::decide_degraded`]: crate::policy::PlacementPolicy::decide_degraded
    BestFitOnly,
}

impl RoundFidelity {
    /// Whether this rung is the legacy "degraded" (bestfit-only) mode.
    pub fn is_degraded(self) -> bool {
        matches!(self, RoundFidelity::BestFitOnly)
    }
}

/// What one `step` did — the per-tick slice of the run report.
#[derive(Clone, Debug, PartialEq)]
pub struct TickOutcome {
    /// The tick that just executed (0-based).
    pub tick_idx: u64,
    /// Mean SLA fulfillment over this tick's VM slots (1.0 when no VM
    /// was hosted).
    pub mean_sla: f64,
    /// Facility draw this tick, watts.
    pub watts: f64,
    /// Green share of the draw, watts.
    pub green_watts: f64,
    /// Powered hosts after the tick.
    pub active_pms: usize,
    /// Total offered load this tick, requests/second.
    pub rps: f64,
    /// Set when this tick ended a scheduling round.
    pub round: Option<RoundOutcome>,
}

/// The planning round a tick triggered, if any.
#[derive(Clone, Debug, PartialEq)]
pub struct RoundOutcome {
    /// Migrations started by this round.
    pub migrations: u64,
    /// True when the round ran the degraded (bestfit-only) plan —
    /// `fidelity == BestFitOnly`, kept as a field for status emitters.
    pub degraded: bool,
    /// The ladder rung the round actually planned at.
    pub fidelity: RoundFidelity,
}

/// Frozen mutable state of a [`Controller`] — everything `step` writes.
///
/// Restoring a snapshot into a controller built from the same scenario,
/// policy and config resumes the run bit-identically (run-constant state
/// — RNG bases, SLA tables, shared network/billing handles — is rebuilt
/// from the scenario and never drifts). Observability counters are *not*
/// part of the snapshot: metrics never influence decisions, so a resumed
/// run re-counts only what it re-executes. Policies with interior state
/// (the random exploration policy) and attached training collectors sit
/// outside the snapshot too.
#[derive(Clone, Debug)]
pub struct ControllerSnapshot {
    tick_idx: u64,
    scenario: Scenario,
    monitor_rng: RngStream,
    gateway: Gateway,
    windows: Vec<SlidingWindow>,
    ledger: ProfitLedger,
    series: SeriesSet,
    sla_stats: OnlineStats,
    watts_stats: OnlineStats,
    active_stats: OnlineStats,
    migrations: u64,
    total_wh: f64,
    served_total: f64,
    last_migration_tick: Vec<Option<u64>>,
    energy_breakdown: EnergyBreakdown,
    dc_draw_w: Vec<f64>,
    next_fault: usize,
    next_profile_change: usize,
}

impl ControllerSnapshot {
    /// The tick index the snapshot was taken at (the next `step` after
    /// a restore executes this tick).
    pub fn tick_idx(&self) -> u64 {
        self.tick_idx
    }
}

/// Reusable per-tick buffers for the per-host contention loop. One
/// instance lives across the whole run, so steady-state ticks allocate
/// nothing: every `Vec` is cleared and refilled in place.
#[derive(Default)]
struct TickScratch {
    /// VMs hosted on the PM being processed.
    hosted: Vec<VmId>,
    /// The subset of `hosted` actually serving this tick.
    serving: Vec<VmId>,
    /// Believed demand per serving VM (slot-indexed like `serving`).
    demands: Vec<Resources>,
    /// Proportional-share grants per serving VM.
    granted: Vec<Resources>,
    /// Work-conserving burst capacity per serving VM.
    burst: Vec<Resources>,
}

/// The MAPE loop as a stepper: Monitor, Analyze, Plan, Execute — one
/// tick per [`step`](Controller::step).
pub struct Controller {
    scenario: Scenario,
    policy: Box<dyn PlacementPolicy>,
    config: RunConfig,
    collector: Option<TrainingCollector>,

    // Per-run observability collector. Installed thread-locally for the
    // duration of each `step`/`finish` call (and inherited by
    // `simcore::par` workers), so interleaved controllers never cross
    // counters.
    obs: Arc<pamdc_obs::Collector>,
    counter_snapshot: [u64; pamdc_obs::Counter::ALL.len()],

    // Run constants, derived once from the scenario.
    n_vms: usize,
    tick_secs: f64,
    rt_rng: RngStream,
    slas: Vec<SlaFunction>,
    vm_dc_keys: Vec<String>,
    round_net: Arc<pamdc_infra::network::NetworkModel>,
    round_billing: Arc<pamdc_econ::billing::BillingPolicy>,
    /// Total planned ticks, if known — only feeds the progress
    /// heartbeat's `tick N/total` rendering.
    progress_total: Option<u64>,

    // Mutable run state (the snapshot set).
    tick_idx: u64,
    monitor_rng: RngStream,
    gateway: Gateway,
    windows: Vec<SlidingWindow>,
    ledger: ProfitLedger,
    series: SeriesSet,
    sla_stats: OnlineStats,
    watts_stats: OnlineStats,
    active_stats: OnlineStats,
    migrations: u64,
    total_wh: f64,
    served_total: f64,
    last_migration_tick: Vec<Option<u64>>,
    energy_breakdown: EnergyBreakdown,
    /// Facility draw per DC: this tick's accumulator and the previous
    /// tick's value (what the scheduler prices marginal hosts against).
    dc_tick_watts: Vec<f64>,
    dc_draw_w: Vec<f64>,
    next_fault: usize,
    next_profile_change: usize,

    // Per-tick scratch buffers (no per-tick allocation in the loop).
    flows: Vec<Vec<FlowDemand>>,
    loads: Vec<OfferedLoad>,
    required: Vec<Resources>,
    scratch: TickScratch,
}

impl Controller {
    /// A controller over a scenario with default run configuration.
    pub fn new(scenario: Scenario, policy: Box<dyn PlacementPolicy>) -> Self {
        Controller::with(scenario, policy, RunConfig::default(), None)
    }

    /// Full constructor: scenario, policy, run knobs and an optional
    /// training-sample collector.
    pub fn with(
        scenario: Scenario,
        policy: Box<dyn PlacementPolicy>,
        config: RunConfig,
        collector: Option<TrainingCollector>,
    ) -> Self {
        let cfg = &config;
        let n_vms = scenario.cluster.vm_count();
        let tick_secs = cfg.tick.as_secs_f64();
        let policy_name = policy.name();

        // Fresh per-run collector. Nested runs — a training simulation
        // inside an arm — stack their own collectors, so counters never
        // cross runs. Timing (and hence any wall-clock read) only
        // exists when tracing.
        let obs = Arc::new(pamdc_obs::Collector::new(cfg.trace));
        if cfg.trace {
            obs.push_event(pamdc_obs::trace::run_start_line(
                &scenario.name,
                &policy_name,
            ));
        }
        let counter_snapshot = obs.counter_snapshot();

        let root = RngStream::root(scenario.seed);
        let monitor_rng = root.derive("monitor");
        let rt_rng = root.derive("rt-jitter");

        let gateway = Gateway::new(n_vms, cfg.max_backlog);
        let windows: Vec<SlidingWindow> = (0..n_vms)
            .map(|_| SlidingWindow::new(scenario.monitor.window_len))
            .collect();

        let n_dcs = scenario.cluster.dc_count();
        let slas: Vec<SlaFunction> = (0..n_vms)
            .map(|i| {
                let spec = &scenario.cluster.vm(VmId::from_index(i)).spec;
                SlaFunction::new(spec.rt0_secs, spec.alpha)
            })
            .collect();
        // Placement-trace series keys, formatted once instead of per
        // VM per tick.
        let vm_dc_keys: Vec<String> = (0..n_vms).map(|vm| format!("vm{vm}_dc")).collect();
        // Round-problem constants: shared by refcount, never cloned per
        // round (the network's latency matrix is the big one).
        let round_net = Arc::new(scenario.cluster.net.clone());
        let round_billing = Arc::new(scenario.billing.clone());

        Controller {
            obs,
            counter_snapshot,
            n_vms,
            tick_secs,
            rt_rng,
            slas,
            vm_dc_keys,
            round_net,
            round_billing,
            progress_total: None,
            tick_idx: 0,
            monitor_rng,
            gateway,
            windows,
            ledger: ProfitLedger::new(),
            series: SeriesSet::new(),
            sla_stats: OnlineStats::new(),
            watts_stats: OnlineStats::new(),
            active_stats: OnlineStats::new(),
            migrations: 0,
            total_wh: 0.0,
            served_total: 0.0,
            last_migration_tick: vec![None; n_vms],
            energy_breakdown: EnergyBreakdown::new(),
            dc_tick_watts: vec![0.0; n_dcs],
            dc_draw_w: vec![0.0; n_dcs],
            next_fault: 0,
            next_profile_change: 0,
            flows: vec![Vec::new(); n_vms],
            loads: vec![OfferedLoad::default(); n_vms],
            required: vec![Resources::ZERO; n_vms],
            scratch: TickScratch::default(),
            scenario,
            policy,
            config,
            collector,
        }
    }

    /// Announce the planned run length (progress heartbeat only; an
    /// open-ended controller — a live feed — leaves it unset).
    pub fn set_progress_total(&mut self, ticks: Option<u64>) {
        self.progress_total = ticks;
    }

    /// The world being driven.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Run configuration.
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// Ticks executed so far (== the next tick index `step` will run).
    pub fn ticks_done(&self) -> u64 {
        self.tick_idx
    }

    /// Migrations started so far.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// The run's metrics collector. Lets the process hosting the
    /// controller (e.g. the serve daemon) count events that happen
    /// *between* steps — feed polls, snapshot writes — alongside the
    /// in-run counters.
    pub fn collector(&self) -> Arc<pamdc_obs::Collector> {
        self.obs.clone()
    }

    /// Whether the next `step` will end a scheduling round.
    pub fn next_step_is_round(&self) -> bool {
        let every = self.config.round_every_ticks;
        every > 0 && self.tick_idx % every == every - 1
    }

    /// Freezes the mutable run state.
    pub fn snapshot(&self) -> ControllerSnapshot {
        ControllerSnapshot {
            tick_idx: self.tick_idx,
            scenario: self.scenario.clone(),
            monitor_rng: self.monitor_rng.clone(),
            gateway: self.gateway.clone(),
            windows: self.windows.clone(),
            ledger: self.ledger.clone(),
            series: self.series.clone(),
            sla_stats: self.sla_stats.clone(),
            watts_stats: self.watts_stats.clone(),
            active_stats: self.active_stats.clone(),
            migrations: self.migrations,
            total_wh: self.total_wh,
            served_total: self.served_total,
            last_migration_tick: self.last_migration_tick.clone(),
            energy_breakdown: self.energy_breakdown,
            dc_draw_w: self.dc_draw_w.clone(),
            next_fault: self.next_fault,
            next_profile_change: self.next_profile_change,
        }
    }

    /// Rewinds (or fast-forwards) to a snapshot taken from a controller
    /// built over the same scenario, policy and config.
    pub fn restore(&mut self, snap: ControllerSnapshot) {
        self.tick_idx = snap.tick_idx;
        self.scenario = snap.scenario;
        self.monitor_rng = snap.monitor_rng;
        self.gateway = snap.gateway;
        self.windows = snap.windows;
        self.ledger = snap.ledger;
        self.series = snap.series;
        self.sla_stats = snap.sla_stats;
        self.watts_stats = snap.watts_stats;
        self.active_stats = snap.active_stats;
        self.migrations = snap.migrations;
        self.total_wh = snap.total_wh;
        self.served_total = snap.served_total;
        self.last_migration_tick = snap.last_migration_tick;
        self.energy_breakdown = snap.energy_breakdown;
        self.dc_draw_w = snap.dc_draw_w;
        self.next_fault = snap.next_fault;
        self.next_profile_change = snap.next_profile_change;
    }

    /// Advances one tick with the full (non-degraded) planner.
    pub fn step(&mut self, demand: StepDemand<'_>) -> TickOutcome {
        self.step_with_fidelity(demand, RoundFidelity::Full)
    }

    /// Advances one tick; `degraded = true` plans a scheduling round
    /// falling on this tick at the ladder's bottom rung (bestfit-only).
    /// Binary shorthand for [`Controller::step_with_fidelity`], kept
    /// for callers that only know the legacy two-level flag (recorded
    /// pre-ladder sessions replay through it).
    pub fn step_with(&mut self, demand: StepDemand<'_>, degraded: bool) -> TickOutcome {
        let fidelity = if degraded {
            RoundFidelity::BestFitOnly
        } else {
            RoundFidelity::Full
        };
        self.step_with_fidelity(demand, fidelity)
    }

    /// Advances one tick; a scheduling round falling on this tick plans
    /// at `fidelity` — the serve daemon's deadline escape hatch (see
    /// [`RoundFidelity`] for the ladder). Placement itself is never
    /// skipped at any rung.
    pub fn step_with_fidelity(
        &mut self,
        demand: StepDemand<'_>,
        fidelity: RoundFidelity,
    ) -> TickOutcome {
        // Install this run's collector for the duration of the tick, so
        // `span!` and the TLS counter free-fns land here even when
        // several controllers interleave on one thread.
        let _obs_tls = pamdc_obs::CollectorGuard::install(self.obs.clone());
        let tick_idx = self.tick_idx;
        let Controller {
            scenario,
            policy,
            config: cfg,
            collector,
            obs,
            counter_snapshot,
            n_vms,
            tick_secs,
            rt_rng,
            slas,
            vm_dc_keys,
            round_net,
            round_billing,
            progress_total,
            monitor_rng,
            gateway,
            windows,
            ledger,
            series,
            sla_stats,
            watts_stats,
            active_stats,
            migrations,
            total_wh,
            served_total,
            last_migration_tick,
            energy_breakdown,
            dc_tick_watts,
            dc_draw_w,
            next_fault,
            next_profile_change,
            flows,
            loads,
            required,
            scratch,
            ..
        } = self;
        let n_vms = *n_vms;
        let tick_secs = *tick_secs;

        // The `tick` span tiles into the MAPE phases below (world /
        // monitor / analyze / plan / execute) — `pamdc trace
        // summarize` measures its coverage against their sum. The
        // guard closes before the trace flush so the tick's own
        // stats drain with the tick's events.
        let tick_span = pamdc_obs::span!("tick");
        obs.add(pamdc_obs::Counter::SimTicks, 1);
        let now = SimTime::ZERO + cfg.tick * tick_idx;
        let tick_end = now + cfg.tick;

        let world_span = pamdc_obs::span!("world");
        // ---------------- Failure injection ----------------
        while *next_fault < scenario.faults.len() && scenario.faults[*next_fault].at <= now {
            let f = scenario.faults[*next_fault];
            scenario.cluster.fail_pm(f.pm, now, f.repair_after);
            *next_fault += 1;
        }

        // ---------------- Software updates ----------------
        while *next_profile_change < scenario.profile_changes.len()
            && scenario.profile_changes[*next_profile_change].at <= now
        {
            let c = scenario.profile_changes[*next_profile_change];
            scenario.perf_profiles[c.vm] = c.profile;
            *next_profile_change += 1;
        }

        scenario.cluster.tick(now);
        drop(world_span);

        let monitor_span = pamdc_obs::span!("monitor");
        // ---------------- Load sampling ----------------
        let mut rps_total = 0.0;
        for vm in 0..n_vms {
            let sampled;
            let samples: &[FlowSample] = match demand {
                StepDemand::Source => {
                    sampled = scenario.workload.sample(vm, now);
                    &sampled
                }
                StepDemand::Flows(per_vm) => &per_vm[vm],
            };
            flows[vm].clear();
            flows[vm].extend(samples.iter().map(|s| FlowDemand {
                source: pamdc_infra::ids::LocationId(s.region as u16 as u32),
                req_per_sec: s.rps,
                kb_per_req: s.kb_out_per_req,
                cpu_ms_per_req: s.cpu_ms_per_req,
            }));
            let rps: f64 = samples.iter().map(|s| s.rps).sum();
            rps_total += rps;
            let wavg = |f: &dyn Fn(&FlowSample) -> f64| {
                if rps > 0.0 {
                    samples.iter().map(|s| f(s) * s.rps).sum::<f64>() / rps
                } else {
                    0.0
                }
            };
            loads[vm] = OfferedLoad {
                rps,
                kb_in_per_req: wavg(&|s| s.kb_in_per_req),
                kb_out_per_req: wavg(&|s| s.kb_out_per_req),
                cpu_ms_per_req: wavg(&|s| s.cpu_ms_per_req),
                backlog: gateway.backlog(VmId::from_index(vm)),
            };
            required[vm] = required_resources(&loads[vm], &scenario.perf_profiles[vm], tick_secs);
        }

        // ---------------- Inter-DC link accounting ----------------
        // Remote client flows cross the provider network: they load
        // the links (slowing concurrent migrations) and, on a priced
        // network, pay per-GB transit.
        scenario.cluster.link_load.clear();
        let mut client_transfer_eur = 0.0;
        for vm in 0..n_vms {
            let Some(pm) = scenario.cluster.placement(VmId::from_index(vm)) else {
                continue;
            };
            let loc = scenario.cluster.location_of_pm(pm);
            for &f in &flows[vm] {
                if f.source == loc {
                    continue;
                }
                let kb_per_sec = f.req_per_sec * (f.kb_per_req + loads[vm].kb_in_per_req);
                scenario
                    .cluster
                    .link_load
                    .add_client_gbps(f.source, loc, kb_per_sec * 8e-6);
                client_transfer_eur += scenario.cluster.net.transfer_cost_eur(
                    kb_per_sec * tick_secs * 1e-6,
                    f.source,
                    loc,
                );
            }
        }
        ledger.book_network(client_transfer_eur);
        drop(monitor_span);

        let analyze_span = pamdc_obs::span!("analyze");
        // ---------------- Per-host contention + perf ----------------
        let mut tick_sla_sum = 0.0;
        let mut tick_sla_n = 0usize;
        let mut tick_watts = 0.0;
        dc_tick_watts.fill(0.0);
        for pm_idx in 0..scenario.cluster.pm_count() {
            let pm_id = PmId::from_index(pm_idx);
            scratch.hosted.clear();
            scratch
                .hosted
                .extend_from_slice(scenario.cluster.pm(pm_id).hosted());
            let host_on = scenario.cluster.pm(pm_id).is_on();
            let location = scenario.cluster.location_of_pm(pm_id);

            // Per-VM blackout fraction of this tick (1.0 = fully
            // dark). A migration completing mid-tick lets the VM
            // serve the remaining fraction.
            let blackout = |v: VmId| -> f64 {
                if !host_on {
                    return 1.0;
                }
                scenario
                    .cluster
                    .in_flight()
                    .iter()
                    .find(|m| m.vm == v)
                    .map(|m| m.blackout_fraction(now, tick_end))
                    .unwrap_or(0.0)
            };
            // Serving VMs: host on and not dark for the whole tick.
            scratch.serving.clear();
            scratch.serving.extend(
                scratch
                    .hosted
                    .iter()
                    .copied()
                    .filter(|&v| blackout(v) < 1.0),
            );
            let serving = &scratch.serving;

            scratch.demands.clear();
            scratch
                .demands
                .extend(serving.iter().map(|v| required[v.index()]));
            let overhead = scenario.cluster.pm(pm_id).virt_overhead_cpu();
            let mut cap = scenario.cluster.pm(pm_id).spec.capacity;
            cap.cpu = (cap.cpu - overhead).max(1.0);
            share_proportionally_into(&scratch.demands, cap, &mut scratch.granted);
            share_work_conserving_into(&scratch.demands, cap, &mut scratch.burst);
            let granted = &scratch.granted;
            let burst = &scratch.burst;

            let mut pm_cpu_used = overhead.min(scenario.cluster.pm(pm_id).spec.capacity.cpu);
            let mut pm_sum_vm_cpu_obs = 0.0;
            let mut pm_sum_rps = 0.0;

            for (slot, &vm_id) in serving.iter().enumerate() {
                let vm = vm_id.index();
                let mut jitter = rt_rng.derive_indexed("vm-tick", (vm as u64) << 40 | tick_idx);
                let outcome = evaluate(
                    &loads[vm],
                    &scenario.perf_profiles[vm],
                    &required[vm],
                    &granted[slot],
                    &burst[slot],
                    &scenario.rt_cfg,
                    tick_secs,
                    Some(&mut jitter),
                );
                let transport =
                    weighted_transport_secs(&flows[vm], location, &scenario.cluster.net);
                let rt_total = outcome.rt_process_secs + transport;
                // Pro-rate for any partial-tick migration blackout.
                let avail = 1.0 - blackout(vm_id);
                let sla = slas[vm].fulfillment(rt_total) * avail;

                // Gateway bookkeeping.
                let arrived = loads[vm].rps * tick_secs;
                let served = outcome.served_rps * tick_secs * avail;
                gateway.settle(vm_id, arrived, served);
                *served_total += served;

                // Monitoring. A dropped sample never reaches the
                // scheduler's sizing window (the short-circuit keeps
                // the RNG stream untouched when dropout is off).
                let obs = observe(&outcome.used, &scenario.monitor, monitor_rng);
                let dropped = scenario.monitor.dropout_prob > 0.0
                    && monitor_rng.chance(scenario.monitor.dropout_prob);
                if !dropped {
                    windows[vm].push(obs);
                }
                pm_cpu_used += outcome.used.cpu;
                pm_sum_vm_cpu_obs += obs.cpu;
                pm_sum_rps += loads[vm].rps;

                // Billing.
                ledger.book_revenue(&scenario.billing, sla, cfg.tick);
                tick_sla_sum += sla;
                tick_sla_n += 1;
                sla_stats.push(sla);
                // TLS free fns here: `obs` is shadowed by the
                // monitoring sample above.
                pamdc_obs::metrics::observe(pamdc_obs::Hist::SimVmSla, sla);
                if sla < 1.0 - 1e-9 {
                    pamdc_obs::metrics::add(pamdc_obs::Counter::SimSlaViolations, 1);
                }

                // Training capture.
                if let Some(col) = collector.as_mut() {
                    let saturated =
                        outcome.served_rps < loads[vm].total_rps(tick_secs) * 0.98 - 1e-9;
                    let mem_ratio = if required[vm].mem_mb > 0.0 {
                        (granted[slot].mem_mb / required[vm].mem_mb).min(1.0)
                    } else {
                        1.0
                    };
                    col.record_vm_tick(
                        &loads[vm],
                        &obs,
                        saturated,
                        granted[slot].cpu,
                        mem_ratio,
                        transport,
                        outcome.rt_process_secs,
                        sla,
                    );
                }
            }

            // Fully blacked-out VMs (in-flight all tick, or host
            // down/booting): they earn nothing and their arrivals
            // pile into the gateway queue.
            for &vm_id in &scratch.hosted {
                if serving.contains(&vm_id) {
                    continue;
                }
                let vm = vm_id.index();
                let arrived = loads[vm].rps * tick_secs;
                gateway.settle(vm_id, arrived, 0.0);
                ledger.book_revenue(&scenario.billing, 0.0, cfg.tick);
                tick_sla_n += 1;
                sla_stats.push(0.0);
                obs.observe(pamdc_obs::Hist::SimVmSla, 0.0);
                obs.add(pamdc_obs::Counter::SimSlaViolations, 1);
            }

            // Power + energy (cost booked per-DC after the host loop,
            // so green production is shared DC-wide, not per host).
            let watts = scenario.cluster.pm(pm_id).facility_watts(pm_cpu_used);
            tick_watts += watts;
            dc_tick_watts[scenario.cluster.dc_of_pm(pm_id).index()] += watts;
            *total_wh += watts * cfg.tick.as_hours_f64();

            if let Some(col) = collector.as_mut() {
                if !serving.is_empty() {
                    let pm_cpu_obs = observe(
                        &Resources::new(pm_cpu_used, 0.0, 0.0, 0.0),
                        &scenario.monitor,
                        monitor_rng,
                    )
                    .cpu;
                    col.record_pm_tick(serving.len(), pm_sum_vm_cpu_obs, pm_sum_rps, pm_cpu_obs);
                }
            }
        }

        // ---------------- Energy billing (per DC) ----------------
        let mut tick_green_w = 0.0;
        for (site, &watts) in scenario.energy.sites.iter().zip(dc_tick_watts.iter()) {
            tick_green_w += site.split(now, watts).green_w;
            let cost = site.book(now, watts, cfg.tick, energy_breakdown);
            ledger.book_energy(cost);
        }
        dc_draw_w.copy_from_slice(dc_tick_watts);

        // ---------------- Series ----------------
        let active = scenario.cluster.powered_pm_count();
        active_stats.push(active as f64);
        watts_stats.push(tick_watts);
        let mean_sla_tick = if tick_sla_n > 0 {
            tick_sla_sum / tick_sla_n as f64
        } else {
            1.0
        };
        if cfg.keep_series {
            series.record("sla", now, mean_sla_tick);
            series.record("watts", now, tick_watts);
            series.record("green_watts", now, tick_green_w);
            series.record("active_pms", now, active as f64);
            series.record("rps", now, rps_total);
            series.record("migrations", now, *migrations as f64);
            for (vm, key) in vm_dc_keys.iter().enumerate() {
                if let Some(pm) = scenario.cluster.placement(VmId::from_index(vm)) {
                    series.record(key, now, scenario.cluster.dc_of_pm(pm).index() as f64);
                }
            }
        }
        drop(analyze_span);

        // ---------------- Plan + Execute ----------------
        let mut round_outcome = None;
        if cfg.round_every_ticks > 0
            && tick_idx % cfg.round_every_ticks == cfg.round_every_ticks - 1
        {
            obs.add(pamdc_obs::Counter::SimRounds, 1);
            match fidelity {
                RoundFidelity::Full => {}
                RoundFidelity::Trimmed => obs.add(pamdc_obs::Counter::ServeTrimmedRounds, 1),
                RoundFidelity::BestFitOnly => obs.add(pamdc_obs::Counter::ServeDegradedRounds, 1),
            }
            let round_migrations_before = *migrations;
            let plan_span = pamdc_obs::span!("plan");
            let problem = build_problem(
                scenario,
                tick_end,
                loads,
                flows,
                windows,
                gateway,
                dc_draw_w,
                cfg,
                round_net,
                round_billing,
            );
            let schedule = match fidelity {
                RoundFidelity::Full => policy.decide(&problem),
                RoundFidelity::Trimmed => policy.decide_trimmed(&problem),
                RoundFidelity::BestFitOnly => policy.decide_degraded(&problem),
            };
            schedule.validate(&problem);
            drop(plan_span);
            let execute_span = pamdc_obs::span!("execute");
            for (vi, &target) in schedule.assignment.iter().enumerate() {
                let vm_id = problem.vms[vi].id;
                if scenario.cluster.vm(vm_id).is_migrating() {
                    continue;
                }
                // Anti-thrash cooldown.
                if last_migration_tick[vm_id.index()]
                    .is_some_and(|t| tick_idx - t < cfg.migration_cooldown_ticks)
                {
                    continue;
                }
                let from_loc = scenario.cluster.location_of_vm(vm_id);
                if scenario.cluster.placement(vm_id) != Some(target)
                    && scenario.cluster.migrate(vm_id, target, tick_end).is_some()
                {
                    *migrations += 1;
                    obs.add(pamdc_obs::Counter::SimMigrations, 1);
                    last_migration_tick[vm_id.index()] = Some(tick_idx);
                    ledger.book_migration(&scenario.billing);
                    // Image shipment pays transit on a priced network.
                    if let Some(from) = from_loc {
                        let to_loc = scenario.cluster.location_of_pm(target);
                        let gb = scenario.cluster.vm(vm_id).spec.image_size_mb / 1000.0;
                        ledger
                            .book_network(scenario.cluster.net.transfer_cost_eur(gb, from, to_loc));
                    }
                }
            }
            scenario.cluster.power_off_idle(tick_end, &[]);
            debug_assert!({
                scenario.cluster.check_invariants();
                true
            });
            drop(execute_span);
            round_outcome = Some(RoundOutcome {
                migrations: *migrations - round_migrations_before,
                degraded: fidelity.is_degraded(),
                fidelity,
            });
        }

        // ---------------- Trace flush + heartbeat ----------------
        drop(tick_span);
        if cfg.trace {
            for (path, stat) in obs.take_spans() {
                obs.push_event(pamdc_obs::trace::span_line(
                    tick_idx,
                    &path,
                    stat.count,
                    stat.total_ns,
                ));
            }
            let snap = obs.counter_snapshot();
            for (i, c) in pamdc_obs::Counter::ALL.iter().enumerate() {
                if snap[i] != counter_snapshot[i] {
                    obs.push_event(pamdc_obs::trace::counter_line(tick_idx, c.name(), snap[i]));
                }
            }
            *counter_snapshot = snap;
        }
        if cfg.progress && (tick_idx + 1).is_multiple_of(60) {
            match *progress_total {
                Some(total) => pamdc_obs::log::progress(format_args!(
                    "[{}] tick {}/{} migrations={} active_pms={}",
                    scenario.name,
                    tick_idx + 1,
                    total,
                    migrations,
                    scenario.cluster.powered_pm_count(),
                )),
                None => pamdc_obs::log::progress(format_args!(
                    "[{}] tick {} migrations={} active_pms={}",
                    scenario.name,
                    tick_idx + 1,
                    migrations,
                    scenario.cluster.powered_pm_count(),
                )),
            }
        }

        let outcome = TickOutcome {
            tick_idx,
            mean_sla: mean_sla_tick,
            watts: tick_watts,
            green_watts: tick_green_w,
            active_pms: active,
            rps: rps_total,
            round: round_outcome,
        };
        self.tick_idx += 1;
        outcome
    }

    /// Folds the run into a [`RunOutcome`] (and hands back the training
    /// collector, if one was attached). `duration` is the span the
    /// outcome reports over — the batch path passes its requested
    /// duration; an open-ended serve session passes
    /// `config.tick * ticks_done()`.
    pub fn finish(self, duration: SimDuration) -> (RunOutcome, Option<TrainingCollector>) {
        let obs = &self.obs;
        let cfg = &self.config;
        let n_vms = self.n_vms;
        let dropped: f64 = (0..n_vms)
            .map(|vm| self.gateway.dropped_total(VmId::from_index(vm)))
            .sum();
        obs.gauge_set(
            pamdc_obs::Gauge::SimActivePms,
            self.scenario.cluster.powered_pm_count() as f64,
        );
        let pending_vms = (0..n_vms)
            .filter(|&vm| self.gateway.backlog(VmId::from_index(vm)) > 0.0)
            .count();
        obs.gauge_set(pamdc_obs::Gauge::SimPendingVms, pending_vms as f64);
        if cfg.trace {
            obs.push_event(pamdc_obs::trace::run_end_line(self.tick_idx));
        }
        let obs_metrics = obs.run_metrics();
        let trace_lines = if cfg.trace {
            obs.take_events()
        } else {
            Vec::new()
        };
        let outcome = RunOutcome {
            policy_name: self.policy.name(),
            scenario_name: self.scenario.name.clone(),
            series: self.series,
            profit: self.ledger.snapshot(),
            duration,
            mean_sla: self.sla_stats.mean(),
            avg_watts: self.watts_stats.mean(),
            total_wh: self.total_wh,
            migrations: self.migrations,
            dropped_requests: dropped,
            served_requests: self.served_total,
            avg_active_pms: self.active_stats.mean(),
            energy: self.energy_breakdown,
            obs_metrics,
            trace_lines,
        };
        (outcome, self.collector)
    }
}

/// Snapshot the world into a scheduling [`Problem`]. `net` and
/// `billing` are the run-constant shared handles — every round's problem
/// bumps their refcount instead of cloning them.
#[allow(clippy::too_many_arguments)]
fn build_problem(
    scenario: &Scenario,
    now: SimTime,
    loads: &[OfferedLoad],
    flows: &[Vec<FlowDemand>],
    windows: &[SlidingWindow],
    gateway: &Gateway,
    dc_draw_w: &[f64],
    cfg: &RunConfig,
    net: &Arc<pamdc_infra::network::NetworkModel>,
    billing: &Arc<pamdc_econ::billing::BillingPolicy>,
) -> Problem {
    let cluster = &scenario.cluster;
    let hosts: Vec<HostInfo> = cluster
        .pms()
        .iter()
        .map(|pm| {
            let boot_penalty = match pm.state() {
                pamdc_infra::pm::PmState::On => SimDuration::ZERO,
                pamdc_infra::pm::PmState::Booting { until } => until - now,
                // A crashed host serves nothing until repaired AND
                // rebooted — the penalty that makes policies evacuate it.
                pamdc_infra::pm::PmState::Failed { until } => (until - now) + pm.spec.boot_time,
                _ => pm.spec.boot_time,
            };
            let dc_idx = pm.dc.index();
            // Quote the price of adding roughly one loaded host's draw on
            // top of what the DC burns now: green headroom makes the
            // quote collapse to the green marginal, saturation restores
            // the grid price.
            let quoted = scenario.energy.quoted_price_eur_kwh(
                dc_idx,
                now,
                dc_draw_w[dc_idx],
                pm.spec.power.facility_watts(100.0),
            );
            HostInfo {
                id: pm.id,
                dc: pm.dc,
                location: cluster.location_of_pm(pm.id),
                capacity: pm.spec.capacity,
                power: pm.spec.power.clone(),
                energy_eur_kwh: quoted,
                virt_overhead_cpu_per_vm: pm.spec.virt_overhead_cpu_per_vm,
                fixed_demand: Resources::ZERO,
                fixed_vm_count: 0,
                powered_on: pm.is_schedulable(),
                boot_penalty,
            }
        })
        .collect();

    let vms: Vec<VmInfo> = (0..cluster.vm_count())
        .map(|vm| {
            let vm_id = VmId::from_index(vm);
            let spec = &cluster.vm(vm_id).spec;
            let current_pm = cluster.placement(vm_id);
            let mut load = loads[vm];
            load.backlog = gateway.backlog(vm_id);
            VmInfo {
                id: vm_id,
                load,
                flows: flows[vm].clone(),
                sla: SlaFunction::new(spec.rt0_secs, spec.alpha),
                image_size_mb: spec.image_size_mb,
                perf: scenario.perf_profiles[vm],
                current_pm,
                current_location: current_pm.map(|pm| cluster.location_of_pm(pm)),
                observed_usage: windows[vm].mean(),
            }
        })
        .collect();

    let horizon = cfg.tick * cfg.plan_horizon_ticks.unwrap_or(cfg.round_every_ticks);
    // Stickiness stays pinned to the round cadence even under a longer
    // planning horizon — it damps per-round churn, not per-horizon value.
    let round_span = cfg.tick * cfg.round_every_ticks;
    Problem {
        vms,
        hosts,
        net: Arc::clone(net),
        billing: Arc::clone(billing),
        horizon,
        // 5% of one round's revenue: big enough to damp noise-driven
        // churn, small enough to let real gains through.
        stickiness_eur: scenario.billing.revenue(1.0, round_span) * 0.05,
        host_index_cache: Default::default(),
    }
}

/// Wall-clock deadline governor for online serving: decides, from
/// observed round durations, which [`RoundFidelity`] rung the *next*
/// scheduling round plans at. Pure state machine — it never reads a
/// clock itself, so it is exactly testable.
///
/// The ladder descends one rung per overrun (Full → Trimmed →
/// BestFitOnly: first shrink the consolidation move budget, only then
/// drop consolidation entirely) and climbs one rung back only when a
/// round finishes within *half* the budget. The asymmetric band —
/// overrun to fall, half-budget to rise — is the hysteresis that stops
/// rounds hovering right at the budget edge from flapping between
/// rungs every tick. A zero budget disables degradation entirely.
#[derive(Clone, Debug)]
pub struct DeadlineGovernor {
    budget_ms: u64,
    fidelity: RoundFidelity,
}

impl DeadlineGovernor {
    /// Governor over a per-round wall-clock budget (0 = unlimited).
    pub fn new(budget_ms: u64) -> Self {
        DeadlineGovernor {
            budget_ms,
            fidelity: RoundFidelity::Full,
        }
    }

    /// The rung the upcoming round should plan at.
    pub fn plan_fidelity(&self) -> RoundFidelity {
        if self.budget_ms == 0 {
            RoundFidelity::Full
        } else {
            self.fidelity
        }
    }

    /// Should the upcoming round plan at the bottom (bestfit-only)
    /// rung? Binary view of [`DeadlineGovernor::plan_fidelity`].
    pub fn plan_degraded(&self) -> bool {
        self.plan_fidelity().is_degraded()
    }

    /// Report a completed round's wall time and the rung it ran at.
    pub fn record_round(&mut self, wall_ms: f64, ran: RoundFidelity) {
        if self.budget_ms == 0 {
            return;
        }
        let budget = self.budget_ms as f64;
        self.fidelity = if wall_ms > budget {
            // Overrun: surrender one more rung of fidelity.
            match ran {
                RoundFidelity::Full => RoundFidelity::Trimmed,
                _ => RoundFidelity::BestFitOnly,
            }
        } else if wall_ms * 2.0 <= budget {
            // Comfortably inside the budget: earn one rung back.
            match ran {
                RoundFidelity::BestFitOnly => RoundFidelity::Trimmed,
                _ => RoundFidelity::Full,
            }
        } else {
            // The dead band between budget/2 and budget: hold steady.
            ran
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{BestFitPolicy, HierarchicalPolicy};
    use crate::scenario::ScenarioBuilder;
    use crate::simulation::SimulationRunner;
    use pamdc_sched::oracle::TrueOracle;

    fn scenario() -> Scenario {
        ScenarioBuilder::paper_intra_dc().vms(3).seed(5).build()
    }

    fn outcome_bits(o: &TickOutcome) -> (u64, [u64; 4], usize, Option<(u64, bool)>) {
        (
            o.tick_idx,
            [
                o.mean_sla.to_bits(),
                o.watts.to_bits(),
                o.green_watts.to_bits(),
                o.rps.to_bits(),
            ],
            o.active_pms,
            o.round.as_ref().map(|r| (r.migrations, r.degraded)),
        )
    }

    #[test]
    fn stepper_matches_batch_runner_bit_for_bit() {
        let policy = || Box::new(BestFitPolicy::new(TrueOracle::new()));
        let hours = SimDuration::from_hours(2);
        let (batch, _) = SimulationRunner::new(scenario(), policy()).run(hours);
        let mut ctl = Controller::new(scenario(), policy());
        for _ in 0..hours.ticks(ctl.config().tick) {
            ctl.step(StepDemand::Source);
        }
        let (stepped, _) = ctl.finish(hours);
        assert_eq!(batch.mean_sla.to_bits(), stepped.mean_sla.to_bits());
        assert_eq!(batch.total_wh.to_bits(), stepped.total_wh.to_bits());
        assert_eq!(batch.migrations, stepped.migrations);
        assert_eq!(
            batch.profit.profit_eur().to_bits(),
            stepped.profit.profit_eur().to_bits()
        );
        assert_eq!(batch.obs_metrics, stepped.obs_metrics);
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let policy = || Box::new(BestFitPolicy::new(TrueOracle::new()));
        let ticks = 60u64;
        let snap_at = 23u64;

        let mut straight = Controller::new(scenario(), policy());
        let reference: Vec<TickOutcome> = (0..ticks)
            .map(|_| straight.step(StepDemand::Source))
            .collect();

        let mut ctl = Controller::new(scenario(), policy());
        for _ in 0..snap_at {
            ctl.step(StepDemand::Source);
        }
        let snap = ctl.snapshot();
        assert_eq!(snap.tick_idx(), snap_at);
        // Run ahead, then rewind.
        for _ in snap_at..ticks {
            ctl.step(StepDemand::Source);
        }
        ctl.restore(snap);
        let resumed: Vec<TickOutcome> = (snap_at..ticks)
            .map(|_| ctl.step(StepDemand::Source))
            .collect();
        for (a, b) in reference[snap_at as usize..].iter().zip(&resumed) {
            assert_eq!(outcome_bits(a), outcome_bits(b));
        }
    }

    #[test]
    fn restore_into_fresh_controller_resumes_bit_identically() {
        // Restart-without-amnesia: a brand-new controller built from
        // the same scenario/policy/config continues a peer's snapshot.
        let policy = || Box::new(HierarchicalPolicy::new(TrueOracle::new()));
        let ticks = 40u64;
        let snap_at = 17u64;

        let mut straight = Controller::new(scenario(), policy());
        let reference: Vec<TickOutcome> = (0..ticks)
            .map(|_| straight.step(StepDemand::Source))
            .collect();

        let mut first = Controller::new(scenario(), policy());
        for _ in 0..snap_at {
            first.step(StepDemand::Source);
        }
        let snap = first.snapshot();
        drop(first);

        let mut second = Controller::new(scenario(), policy());
        second.restore(snap);
        let resumed: Vec<TickOutcome> = (snap_at..ticks)
            .map(|_| second.step(StepDemand::Source))
            .collect();
        for (a, b) in reference[snap_at as usize..].iter().zip(&resumed) {
            assert_eq!(outcome_bits(a), outcome_bits(b));
        }
    }

    #[test]
    fn explicit_flows_match_source_sampling() {
        // Feeding the workload's own per-tick samples back through
        // StepDemand::Flows must be indistinguishable from Source.
        let policy = || Box::new(BestFitPolicy::new(TrueOracle::new()));
        let ticks = 30u64;
        let sc = scenario();
        let tick = RunConfig::default().tick;
        let n_vms = sc.cluster.vm_count();

        let mut by_source = Controller::new(sc.clone(), policy());
        let reference: Vec<TickOutcome> = (0..ticks)
            .map(|_| by_source.step(StepDemand::Source))
            .collect();

        let mut by_flows = Controller::new(sc.clone(), policy());
        for t in 0..ticks {
            let now = SimTime::ZERO + tick * t;
            let per_vm: Vec<Vec<FlowSample>> =
                (0..n_vms).map(|vm| sc.workload.sample(vm, now)).collect();
            let got = by_flows.step(StepDemand::Flows(&per_vm));
            assert_eq!(outcome_bits(&reference[t as usize]), outcome_bits(&got));
        }
    }

    #[test]
    fn degraded_rounds_skip_local_search_but_never_placement() {
        let mk = |degraded: bool| {
            let mut ctl =
                Controller::new(scenario(), Box::new(BestFitPolicy::new(TrueOracle::new())));
            let mut rounds = 0;
            for _ in 0..60 {
                let is_round = ctl.next_step_is_round();
                let out = ctl.step_with(StepDemand::Source, degraded);
                if is_round {
                    let r = out.round.expect("round tick must report a round");
                    assert_eq!(r.degraded, degraded);
                    rounds += 1;
                }
            }
            assert!(rounds > 0, "60 ticks at cadence 10 must hold rounds");
            let (outcome, _) = ctl.finish(SimDuration::from_mins(60));
            outcome
        };
        let metric = |o: &RunOutcome, key: &str| -> f64 {
            o.obs_metrics
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("metric {key} missing"))
        };

        let full = mk(false);
        let degraded = mk(true);
        // Placement always runs: every round calls the Best-Fit solver.
        assert!(metric(&full, "sched.bestfit.calls") > 0.0);
        assert_eq!(
            metric(&full, "sim.rounds"),
            metric(&degraded, "sim.rounds"),
            "degradation must not skip rounds"
        );
        assert!(metric(&degraded, "sched.bestfit.calls") > 0.0);
        // Local search runs only at full fidelity.
        let ls = |o: &RunOutcome| {
            metric(o, "sched.localsearch.moves_accepted")
                + metric(o, "sched.localsearch.moves_rejected")
                + metric(o, "sched.localsearch.candidates_rescored")
        };
        assert!(ls(&full) > 0.0, "full rounds must consolidate");
        assert_eq!(ls(&degraded), 0.0, "degraded rounds must not consolidate");
    }

    #[test]
    fn degraded_hierarchical_rounds_skip_local_search() {
        let mut ctl = Controller::new(
            scenario(),
            Box::new(HierarchicalPolicy::new(TrueOracle::new())),
        );
        for _ in 0..60 {
            ctl.step_with(StepDemand::Source, true);
        }
        let (outcome, _) = ctl.finish(SimDuration::from_mins(60));
        let metric = |key: &str| -> f64 {
            outcome
                .obs_metrics
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| *v)
                .unwrap_or(0.0)
        };
        assert!(metric("sched.hier.rounds") > 0.0);
        assert_eq!(
            metric("sched.localsearch.moves_accepted") + metric("sched.localsearch.moves_rejected"),
            0.0
        );
    }

    #[test]
    fn deadline_governor_descends_one_rung_per_overrun() {
        let mut g = DeadlineGovernor::new(100);
        assert_eq!(g.plan_fidelity(), RoundFidelity::Full, "starts full");
        g.record_round(80.0, RoundFidelity::Full);
        assert_eq!(
            g.plan_fidelity(),
            RoundFidelity::Full,
            "dead-band round holds full fidelity"
        );
        g.record_round(150.0, RoundFidelity::Full);
        assert_eq!(
            g.plan_fidelity(),
            RoundFidelity::Trimmed,
            "first overrun only trims the move budget"
        );
        assert!(!g.plan_degraded(), "trimmed is not the bestfit-only rung");
        g.record_round(150.0, RoundFidelity::Trimmed);
        assert_eq!(
            g.plan_fidelity(),
            RoundFidelity::BestFitOnly,
            "second overrun drops consolidation entirely"
        );
        assert!(g.plan_degraded());
        g.record_round(150.0, RoundFidelity::BestFitOnly);
        assert_eq!(
            g.plan_fidelity(),
            RoundFidelity::BestFitOnly,
            "no rung below bestfit-only"
        );
    }

    #[test]
    fn deadline_governor_climbs_one_rung_with_hysteresis() {
        let mut g = DeadlineGovernor::new(100);
        g.record_round(150.0, RoundFidelity::Full);
        g.record_round(150.0, RoundFidelity::Trimmed);
        assert_eq!(g.plan_fidelity(), RoundFidelity::BestFitOnly);

        g.record_round(70.0, RoundFidelity::BestFitOnly);
        assert_eq!(
            g.plan_fidelity(),
            RoundFidelity::BestFitOnly,
            "70ms > half budget: the dead band holds the rung (no flap)"
        );
        g.record_round(40.0, RoundFidelity::BestFitOnly);
        assert_eq!(
            g.plan_fidelity(),
            RoundFidelity::Trimmed,
            "comfortable round earns exactly one rung back"
        );
        g.record_round(60.0, RoundFidelity::Trimmed);
        assert_eq!(
            g.plan_fidelity(),
            RoundFidelity::Trimmed,
            "dead band holds the middle rung too"
        );
        g.record_round(40.0, RoundFidelity::Trimmed);
        assert_eq!(
            g.plan_fidelity(),
            RoundFidelity::Full,
            "a second comfortable round restores full fidelity"
        );
        g.record_round(10.0, RoundFidelity::Full);
        assert_eq!(g.plan_fidelity(), RoundFidelity::Full, "no rung above full");

        let mut unlimited = DeadlineGovernor::new(0);
        unlimited.record_round(1e9, RoundFidelity::Full);
        assert_eq!(
            unlimited.plan_fidelity(),
            RoundFidelity::Full,
            "zero budget never degrades"
        );
        assert!(!unlimited.plan_degraded());
    }

    #[test]
    fn trimmed_rounds_consolidate_on_a_quarter_move_budget() {
        let mk = |fidelity: RoundFidelity| {
            let mut ctl =
                Controller::new(scenario(), Box::new(BestFitPolicy::new(TrueOracle::new())));
            for _ in 0..60 {
                let is_round = ctl.next_step_is_round();
                let out = ctl.step_with_fidelity(StepDemand::Source, fidelity);
                if is_round {
                    let r = out.round.expect("round tick must report a round");
                    assert_eq!(r.fidelity, fidelity);
                    assert_eq!(r.degraded, fidelity == RoundFidelity::BestFitOnly);
                }
            }
            let (outcome, _) = ctl.finish(SimDuration::from_mins(60));
            outcome
        };
        let metric = |o: &RunOutcome, key: &str| -> f64 {
            o.obs_metrics
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("metric {key} missing"))
        };

        let full = mk(RoundFidelity::Full);
        let trimmed = mk(RoundFidelity::Trimmed);
        // Placement and the scheduling cadence are untouched by the rung.
        assert!(metric(&trimmed, "sched.bestfit.calls") > 0.0);
        assert_eq!(metric(&full, "sim.rounds"), metric(&trimmed, "sim.rounds"));
        // The middle rung still consolidates — unlike bestfit-only …
        let moves = |o: &RunOutcome| {
            metric(o, "sched.localsearch.moves_accepted")
                + metric(o, "sched.localsearch.moves_rejected")
        };
        assert!(moves(&trimmed) > 0.0, "trimmed rounds must consolidate");
        // … but on a shrunken budget, so it never explores more than
        // the full-fidelity pass.
        assert!(
            moves(&trimmed) <= moves(&full),
            "a quarter move budget cannot out-move full fidelity"
        );
        // The rung is observable: trimmed rounds count themselves, and
        // never masquerade as bestfit-only degradation.
        assert_eq!(
            metric(&trimmed, "serve.trimmed_rounds"),
            metric(&trimmed, "sim.rounds")
        );
        assert_eq!(metric(&trimmed, "serve.degraded_rounds"), 0.0);
        assert_eq!(metric(&full, "serve.trimmed_rounds"), 0.0);
    }
}
