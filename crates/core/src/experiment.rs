//! The experiment pipeline: one engine, many declaratively-described
//! studies.
//!
//! Every evaluation in this workspace is the same MAPE loop measured
//! under different worlds and policies. This module factors that shape
//! into four shared stages so a driver module only declares what is
//! actually specific to its experiment:
//!
//! 1. **Training** — [`Experiment::training`] names a Table-I
//!    configuration when the experiment needs the trained predictor
//!    suite; the pipeline runs it exactly once.
//! 2. **Arm enumeration** — [`Experiment::arms`] returns the
//!    policy/world variants to measure as plain [`Arm`] values.
//! 3. **Execution** — [`execute`] funnels every arm through
//!    [`SimulationRunner`] via `simcore::par` (deterministic: each
//!    arm's randomness derives from its own scenario seed, so the
//!    fan-out is bit-identical to a sequential loop).
//! 4. **Emission** — [`Experiment::emit`] folds the labelled outcomes
//!    into an [`ExperimentReport`]; [`outcome_metrics`] and
//!    [`metric_key`] keep metric naming consistent across drivers, the
//!    CLI's CSV/JSON emitters and the bench harness.
//!
//! Analysis-style experiments that measure something other than
//! simulation arms (solver timing studies, prequential learning streams)
//! return no arms and implement everything in `emit` — they still share
//! the registry, training and emission paths.

use crate::experiments::table1::{self, Table1Config};
use crate::policy::PlacementPolicy;
use crate::report::{metric_key, TextTable};
use crate::scenario::Scenario;
use crate::simulation::{RunConfig, RunOutcome, SimulationRunner};
use crate::training::TrainingOutcome;
use pamdc_simcore::time::SimDuration;

/// One simulation arm: a world, a policy, and how long to run them.
///
/// The `label` prefixes the arm's metrics in reports (empty for
/// single-arm experiments); it is sanitized through [`metric_key`] at
/// construction so every downstream emitter sees the same key.
pub struct Arm {
    /// Metric prefix (already sanitized).
    pub label: String,
    /// The world to simulate.
    pub scenario: Scenario,
    /// The placement policy driving the MAPE loop.
    pub policy: Box<dyn PlacementPolicy>,
    /// Run knobs (cadence, horizon, series retention).
    pub config: RunConfig,
    /// Simulated hours.
    pub hours: u64,
}

impl Arm {
    /// An arm with the default [`RunConfig`].
    pub fn new(
        label: impl Into<String>,
        scenario: Scenario,
        policy: Box<dyn PlacementPolicy>,
        hours: u64,
    ) -> Self {
        Arm {
            label: metric_key(&label.into()),
            scenario,
            policy,
            config: RunConfig::default(),
            hours,
        }
    }

    /// An arm labelled after its policy's display name.
    pub fn named_after_policy(
        scenario: Scenario,
        policy: Box<dyn PlacementPolicy>,
        hours: u64,
    ) -> Self {
        let label = policy.name();
        Arm::new(label, scenario, policy, hours)
    }

    /// Overrides the run configuration.
    pub fn config(mut self, config: RunConfig) -> Self {
        self.config = config;
        self
    }
}

/// Everything the pipeline computed for [`Experiment::emit`].
pub struct ExperimentRun {
    /// The Table-I outcome, when [`Experiment::training`] asked for one.
    pub training: Option<TrainingOutcome>,
    /// `(label, outcome)` per arm, in [`Experiment::arms`] order.
    pub outcomes: Vec<(String, RunOutcome)>,
}

impl ExperimentRun {
    /// The training outcome (panics when the experiment declared none).
    pub fn training(&self) -> &TrainingOutcome {
        self.training
            .as_ref()
            .expect("experiment declared no training stage")
    }

    /// Flattens every arm's [`outcome_metrics`], label-prefixed, in arm
    /// order — the shared emission path.
    pub fn arm_metrics(&self) -> Vec<(String, f64)> {
        let mut metrics = Vec::new();
        for (label, outcome) in &self.outcomes {
            metrics.extend(outcome_metrics(label, outcome));
        }
        metrics
    }

    /// Consumes the run, returning the outcomes in arm order.
    pub fn into_outcomes(self) -> Vec<RunOutcome> {
        self.outcomes.into_iter().map(|(_, o)| o).collect()
    }
}

/// A finished experiment: rendered text plus flat metrics.
#[derive(Clone, Debug)]
pub struct ExperimentReport {
    /// Human-readable report (the driver's table).
    pub text: String,
    /// Flat `(key, value)` metrics for CSV/JSON emission.
    pub metrics: Vec<(String, f64)>,
}

/// A declaratively-described study: the pipeline runs training, executes
/// the arms, and hands both to `emit`.
pub trait Experiment: Send {
    /// The Table-I training stage this experiment needs, if any.
    fn training(&self) -> Option<Table1Config> {
        None
    }

    /// The simulation arms to execute (empty for analysis-style
    /// experiments that compute everything in [`Experiment::emit`]).
    fn arms(&mut self, training: Option<&TrainingOutcome>) -> Vec<Arm> {
        let _ = training;
        Vec::new()
    }

    /// Folds the executed arms (and training outcome) into a report.
    fn emit(&self, run: ExperimentRun) -> ExperimentReport;
}

/// Stage 3: runs every arm through [`SimulationRunner`] in parallel,
/// returning `(label, outcome)` pairs in input order.
///
/// When a trace sink is installed (`--trace-out`), each arm buffers its
/// JSONL events inside its own run and this stage flushes them to the
/// sink *in arm order* after the fan-out completes — parallel arms never
/// interleave lines in the trace file.
pub fn execute(arms: Vec<Arm>) -> Vec<(String, RunOutcome)> {
    let trace = pamdc_obs::trace::enabled();
    let mut outcomes = pamdc_simcore::par::parallel_map(arms, |mut arm| {
        arm.config.trace = trace;
        let outcome = SimulationRunner::new(arm.scenario, arm.policy)
            .config(arm.config)
            .run(SimDuration::from_hours(arm.hours))
            .0;
        (arm.label, outcome)
    });
    if trace {
        for (_, outcome) in &mut outcomes {
            pamdc_obs::trace::write_lines(&outcome.trace_lines);
            outcome.trace_lines.clear();
        }
    }
    outcomes
}

/// Runs an experiment through all four stages.
pub fn run_experiment(exp: &mut dyn Experiment) -> ExperimentReport {
    let training = exp.training().map(|cfg| table1::run(&cfg));
    let outcomes = execute(exp.arms(training.as_ref()));
    exp.emit(ExperimentRun { training, outcomes })
}

/// Flattens a [`RunOutcome`] into report metrics. A non-empty `prefix`
/// (sanitized via [`metric_key`]) labels multi-arm experiments.
pub fn outcome_metrics(prefix: &str, o: &RunOutcome) -> Vec<(String, f64)> {
    let prefix = metric_key(prefix);
    let key = |k: &str| {
        if prefix.is_empty() {
            k.to_string()
        } else {
            format!("{prefix}_{k}")
        }
    };
    let mut metrics = vec![
        (key("mean_sla"), o.mean_sla),
        (key("avg_watts"), o.avg_watts),
        (key("total_wh"), o.total_wh),
        (key("avg_active_pms"), o.avg_active_pms),
        (key("migrations"), o.migrations as f64),
        (key("dropped_requests"), o.dropped_requests),
        (key("served_requests"), o.served_requests),
        (key("revenue_eur"), o.profit.revenue_eur),
        (key("energy_eur"), o.profit.energy_eur),
        (key("profit_eur"), o.profit.profit_eur()),
        (key("eur_per_hour"), o.eur_per_hour()),
        (key("green_wh"), o.energy.green_wh),
        (key("co2_g_per_kwh"), o.energy.intensity_g_per_kwh()),
    ];
    // Deterministic observability counters ride along under `obs.` —
    // the fixed schema ([`pamdc_obs::metrics::RUN_METRIC_COUNT`] keys,
    // zeros included) keeps CSV columns stable across arms.
    metrics.extend(
        o.obs_metrics
            .iter()
            .map(|(k, v)| (key(&format!("obs.{k}")), *v)),
    );
    metrics
}

/// Renders a generic run's summary table.
pub fn render_outcome(o: &RunOutcome) -> String {
    let mut t = TextTable::new(&["metric", "value"]);
    for (k, v) in outcome_metrics("", o) {
        t.row(vec![k, format!("{v:.6}")]);
    }
    format!(
        "Scenario '{}' under {} for {}\n{}",
        o.scenario_name,
        o.policy_name,
        o.duration,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::StaticPolicy;
    use crate::scenario::ScenarioBuilder;
    use pamdc_sched::oracle::TrueOracle;

    struct TwoArm;

    impl Experiment for TwoArm {
        fn arms(&mut self, _training: Option<&TrainingOutcome>) -> Vec<Arm> {
            let build = || ScenarioBuilder::paper_multi_dc().vms(2).seed(3).build();
            vec![
                Arm::new(
                    "a[0]",
                    build(),
                    Box::new(StaticPolicy(TrueOracle::new())),
                    1,
                ),
                Arm::new("b", build(), Box::new(StaticPolicy(TrueOracle::new())), 1),
            ]
        }

        fn emit(&self, run: ExperimentRun) -> ExperimentReport {
            ExperimentReport {
                text: format!("{} arms", run.outcomes.len()),
                metrics: run.arm_metrics(),
            }
        }
    }

    #[test]
    fn pipeline_labels_and_orders_arm_metrics() {
        let report = run_experiment(&mut TwoArm);
        assert_eq!(report.text, "2 arms");
        // Labels are sanitized at Arm construction and prefix in order.
        assert_eq!(report.metrics[0].0, "a_0__mean_sla");
        let b_at = report
            .metrics
            .iter()
            .position(|(k, _)| k == "b_mean_sla")
            .expect("second arm's metrics follow the first's");
        // 13 domain metrics + the fixed observability schema per arm.
        assert_eq!(b_at, 13 + pamdc_obs::metrics::RUN_METRIC_COUNT);
        // The obs block is present, prefixed, and sorted by key.
        let obs_keys: Vec<&str> = report.metrics[..b_at]
            .iter()
            .filter_map(|(k, _)| k.strip_prefix("a_0__obs."))
            .collect();
        assert_eq!(obs_keys.len(), pamdc_obs::metrics::RUN_METRIC_COUNT);
        assert!(obs_keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn identical_arms_produce_bit_identical_outcomes() {
        let a = run_experiment(&mut TwoArm);
        let b = run_experiment(&mut TwoArm);
        for ((ka, va), (kb, vb)) in a.metrics.iter().zip(&b.metrics) {
            assert_eq!(ka, kb);
            assert_eq!(va.to_bits(), vb.to_bits());
        }
    }
}
