//! Property tests for the core layer: energy quoting stays bounded for
//! arbitrary environments, and the simulation's accounting identities
//! hold under randomized fault plans, tariffs and dropout.

use pamdc_core::energy::EnergyEnvironment;
use pamdc_core::policy::BestFitPolicy;
use pamdc_core::scenario::ScenarioBuilder;
use pamdc_core::simulation::{RunConfig, SimulationRunner};
use pamdc_green::solar::SolarFarm;
use pamdc_green::tariff::Tariff;
use pamdc_sched::oracle::TrueOracle;
use pamdc_simcore::time::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The quoted €/kWh never leaves the [green marginal, max grid]
    /// band, whatever the draw, hour or solar configuration.
    #[test]
    fn quoted_price_stays_in_band(
        solar_w in 0.0_f64..2000.0,
        min_sky in 0.0_f64..1.0,
        draw in 0.0_f64..1000.0,
        host_w in 1.0_f64..200.0,
        hour in 0_u64..96,
        dc in 0_usize..4,
        seed in 0_u64..100,
    ) {
        let scenario = ScenarioBuilder::paper_multi_dc().vms(1).seed(1).build();
        let env = EnergyEnvironment::paper_default(&scenario.cluster)
            .with_solar_everywhere(&scenario.cluster, solar_w, min_sky, 4, seed);
        let q = env.quoted_price_eur_kwh(dc, SimTime::from_hours(hour), draw, host_w);
        let lo = env.sites[dc].green_marginal_eur_kwh;
        let hi = 0.1513_f64; // dearest Table II tariff
        prop_assert!(q >= lo - 1e-12 && q <= hi + 1e-12, "quote {q} outside [{lo}, {hi}]");
    }

    /// Short simulations under randomized fault plans, dropout and a
    /// stepped tariff keep every accounting identity intact.
    #[test]
    fn simulation_identities_hold_under_chaos(
        fault_pm in 0_usize..4,
        fault_at_min in 5_u64..100,
        repair_mins in 5_u64..180,
        dropout in 0.0_f64..0.4,
        spike in 1.0_f64..10.0,
        seed in 0_u64..50,
    ) {
        let mut scenario = ScenarioBuilder::paper_intra_dc()
            .vms(3)
            .seed(seed)
            .fault(fault_pm, SimTime::from_mins(fault_at_min), SimDuration::from_mins(repair_mins))
            .build();
        scenario.monitor.dropout_prob = dropout;
        scenario.energy = EnergyEnvironment::paper_default(&scenario.cluster)
            .with_tariff(0, Tariff::Step {
                initial_eur: 0.1513,
                steps: vec![(SimTime::from_mins(60), 0.1513 * spike)],
            });
        let (o, _) = SimulationRunner::new(
            scenario,
            Box::new(BestFitPolicy::new(TrueOracle::new())),
        )
        .config(RunConfig { keep_series: false, ..RunConfig::default() })
        .run(SimDuration::from_hours(2));

        prop_assert!((0.0..=1.0).contains(&o.mean_sla), "sla {}", o.mean_sla);
        // Meter vs ledger.
        prop_assert!(
            (o.energy.total_wh() - o.total_wh).abs() < 1e-6 * o.total_wh.max(1.0),
            "ledger {} vs meter {}", o.energy.total_wh(), o.total_wh
        );
        // No renewables here: everything brown.
        prop_assert!(o.energy.green_wh == 0.0);
        // Profit identity.
        let p = o.profit;
        prop_assert!(
            (p.profit_eur()
                - (p.revenue_eur - p.energy_eur - p.migration_eur - p.network_eur)).abs() < 1e-9
        );
        // Energy cost bounded by the spiked tariff.
        let max_cost = o.total_wh / 1000.0 * 0.1513 * spike;
        prop_assert!(p.energy_eur <= max_cost + 1e-9);
    }

    /// Solar production booked by a run never exceeds what the farms
    /// could physically produce over the horizon.
    #[test]
    fn green_energy_is_physically_bounded(
        solar_w in 10.0_f64..500.0,
        seed in 0_u64..50,
    ) {
        let mut scenario = ScenarioBuilder::paper_intra_dc().vms(2).seed(seed).build();
        scenario.energy = EnergyEnvironment::paper_default(&scenario.cluster)
            .with_solar_everywhere(&scenario.cluster, solar_w, 1.0, 2, seed);
        let farm_capacity: f64 = scenario.cluster.dcs().len() as f64
            * solar_w
            * scenario.cluster.pms().len() as f64;
        let (o, _) = SimulationRunner::new(
            scenario,
            Box::new(BestFitPolicy::new(TrueOracle::new())),
        )
        .config(RunConfig { keep_series: false, ..RunConfig::default() })
        .run(SimDuration::from_hours(24));
        // 24 h at full nameplate is a generous upper bound (daylight is
        // 12 h and the bell is below 1 almost everywhere).
        prop_assert!(o.energy.green_wh <= farm_capacity * 24.0 + 1e-6);
        prop_assert!(o.energy.green_fraction() <= 1.0);
    }
}

/// Deterministic (non-proptest) regression: a solar farm with zero
/// capacity behaves exactly like no farm at all.
#[test]
fn zero_capacity_solar_is_identity() {
    let run = |with_farm: bool| {
        let mut scenario = ScenarioBuilder::paper_intra_dc().vms(2).seed(3).build();
        if with_farm {
            let env = EnergyEnvironment::paper_default(&scenario.cluster).with_site(
                0,
                scenario.energy.sites[0]
                    .clone()
                    .with_solar(SolarFarm::new(0.0, 1.0, 2, 0.5, 7)),
            );
            scenario.energy = env;
        }
        SimulationRunner::new(scenario, Box::new(BestFitPolicy::new(TrueOracle::new())))
            .config(RunConfig {
                keep_series: false,
                ..RunConfig::default()
            })
            .run(SimDuration::from_hours(2))
            .0
    };
    let bare = run(false);
    let farmed = run(true);
    assert_eq!(
        bare.profit.energy_eur.to_bits(),
        farmed.profit.energy_eur.to_bits()
    );
    assert_eq!(farmed.energy.green_wh, 0.0);
}
