//! E-OL — regenerates the on-line learning drift table (future work 4)
//! and times the full prequential pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use pamdc_core::experiments::online_drift;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let result = online_drift::run(&online_drift::OnlineDriftConfig::default());
    println!("\n{}", online_drift::render(&result));

    let mut g = c.benchmark_group("online_drift");
    g.sample_size(10);
    g.bench_function("stream_and_three_models", |b| {
        b.iter(|| {
            let r = online_drift::run(&online_drift::OnlineDriftConfig::quick(5));
            black_box(r.drift_aware.recovered)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
