//! E-F7/T3 — regenerates Figure 7 / Table III (static vs dynamic
//! multi-DC) and times the paired comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use pamdc_core::experiments::fig7_table3;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let result = fig7_table3::run(&fig7_table3::Table3Config::default(), None);
    println!("\n{}", fig7_table3::render(&result));

    let mut g = c.benchmark_group("fig7_table3");
    g.sample_size(10);
    g.bench_function("both_arms_quick", |b| {
        b.iter(|| {
            black_box(
                fig7_table3::run(&fig7_table3::Table3Config::quick(8), None).energy_saving_frac(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
