//! Resilience extensions: bandwidth-shared migration timing (future
//! work 2) and failure recovery. Prints a migration-storm duration table
//! and a crash-recovery comparison, then micro-benchmarks the shared-
//! bandwidth path.

use criterion::{criterion_group, criterion_main, Criterion};
use pamdc_core::policy::{BestFitPolicy, PlacementPolicy, StaticPolicy};
use pamdc_core::scenario::ScenarioBuilder;
use pamdc_core::simulation::SimulationRunner;
use pamdc_infra::network::{City, NetworkModel};
use pamdc_sched::oracle::TrueOracle;
use pamdc_simcore::time::{SimDuration, SimTime};
use std::hint::black_box;

fn migration_storm_table() {
    let net = NetworkModel::paper();
    let bcn = City::Barcelona.location();
    let bst = City::Boston.location();
    println!("\nMigration duration under link sharing (2 GB image, BCN->BST)");
    println!(
        "{:>12} {:>14} {:>14}",
        "concurrent", "client Gbps", "duration s"
    );
    for concurrent in [1usize, 2, 4, 8] {
        for client_gbps in [0.0, 5.0, 9.0] {
            let d = net.migration_duration_shared(2048.0, bcn, bst, concurrent, client_gbps);
            println!(
                "{concurrent:>12} {client_gbps:>14.1} {:>14.2}",
                d.as_secs_f64()
            );
        }
    }
}

fn failure_recovery_table() {
    let run = |policy: Box<dyn PlacementPolicy>| {
        let scenario = ScenarioBuilder::paper_intra_dc()
            .vms(3)
            .seed(5)
            .fault(0, SimTime::from_mins(30), SimDuration::from_hours(4))
            .build();
        SimulationRunner::new(scenario, policy)
            .run(SimDuration::from_hours(3))
            .0
    };
    let dynamic = run(Box::new(BestFitPolicy::new(TrueOracle::new())));
    let frozen = run(Box::new(StaticPolicy(TrueOracle::new())));
    println!("\nHost crash at minute 30 (repair after 4 h), 3 h run");
    println!(
        "{:<22} {:>9} {:>12} {:>11}",
        "policy", "mean SLA", "migrations", "€/h"
    );
    for (label, o) in [("reactive best-fit", &dynamic), ("static", &frozen)] {
        println!(
            "{label:<22} {:>9.4} {:>12} {:>11.4}",
            o.mean_sla,
            o.migrations,
            o.eur_per_hour()
        );
    }
}

fn bench(c: &mut Criterion) {
    migration_storm_table();
    failure_recovery_table();

    let net = NetworkModel::paper();
    let bcn = City::Barcelona.location();
    let bst = City::Boston.location();
    let mut g = c.benchmark_group("resilience");
    g.bench_function("migration_duration_shared", |b| {
        b.iter(|| black_box(net.migration_duration_shared(2048.0, bcn, bst, 4, 5.0)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
