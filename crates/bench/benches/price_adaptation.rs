//! E-PA — regenerates the §V-B price-adaptation result (a tariff spike
//! the adaptive scheduler flees and the posted-price scheduler eats) and
//! times one paired comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use pamdc_core::experiments::price_adaptation;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let result = price_adaptation::run(&price_adaptation::PriceAdaptationConfig::default());
    println!("\n{}", price_adaptation::render(&result));

    let mut g = c.benchmark_group("price_adaptation");
    g.sample_size(10);
    g.bench_function("both_arms_quick", |b| {
        b.iter(|| {
            let r = price_adaptation::run(&price_adaptation::PriceAdaptationConfig::quick(7));
            black_box(r.adaptive.boston_share_post)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
