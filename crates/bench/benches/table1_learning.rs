//! E-T1 — regenerates the paper's Table I (learning details per
//! predicted element) and times the training pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use pamdc_core::experiments::table1;
use pamdc_core::training::{collect_training_data, train_suite};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Regenerate and print the table once.
    let outcome = table1::run(&table1::Table1Config::quick(2013));
    println!("\n{}", table1::render(&outcome));
    println!("{}", table1::render_comparison(&outcome));

    // Time the two pipeline stages separately.
    let collector = collect_training_data(3, &[0.6, 1.2], 2, 99);
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("collect_2x2h", |b| {
        b.iter(|| black_box(collect_training_data(3, &[0.6, 1.2], 2, 99)))
    });
    g.bench_function("train_suite", |b| {
        b.iter(|| black_box(train_suite(&collector, 7)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
