//! E-SC2 — regenerates the scheduling-round scalability sweep (future
//! work 1: "how many PMs/VMs can we manage per scheduling round") and
//! benchmarks flat vs hierarchical rounds at a mid-size instance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pamdc_core::experiments::scaling;
use pamdc_sched::bestfit::best_fit;
use pamdc_sched::hierarchical::{hierarchical_round, HierarchicalConfig};
use pamdc_sched::oracle::TrueOracle;
use pamdc_sched::problem::synthetic;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cells = scaling::run(&scaling::ScalingConfig::default());
    println!("\n{}", scaling::render(&cells));

    let oracle = TrueOracle::new();
    let cfg = HierarchicalConfig::default();
    let mut g = c.benchmark_group("round_scaling");
    for (vms, hosts) in [(20usize, 16usize), (80, 64), (320, 256)] {
        let problem = synthetic::problem(vms, hosts, 60.0);
        g.bench_with_input(BenchmarkId::new("flat_bestfit", vms), &problem, |b, p| {
            b.iter(|| black_box(best_fit(p, &oracle).schedule.assignment.len()))
        });
        g.bench_with_input(BenchmarkId::new("hierarchical", vms), &problem, |b, p| {
            b.iter(|| black_box(hierarchical_round(p, &oracle, &cfg).0.assignment.len()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
