//! E-HET — regenerates the §V-C price-heterogeneity sweep ("the benefit
//! of inter-DC optimization priming energy consumption should be more
//! obvious" as prices diverge) and times one paired cell.

use criterion::{criterion_group, criterion_main, Criterion};
use pamdc_core::experiments::heterogeneity;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cells = heterogeneity::run(&heterogeneity::HeterogeneityConfig::default());
    println!("\n{}", heterogeneity::render(&cells));

    let mut g = c.benchmark_group("heterogeneity");
    g.sample_size(10);
    g.bench_function("one_cell_quick", |b| {
        b.iter(|| {
            let cells = heterogeneity::run(&heterogeneity::HeterogeneityConfig::quick(5));
            black_box(cells[1].energy_cost_saving_frac())
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
