//! E-F5 — regenerates Figure 5 (the VM chasing its load) and times the
//! follow-the-load run.

use criterion::{criterion_group, criterion_main, Criterion};
use pamdc_core::experiments::fig5;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let result = fig5::run(&fig5::Fig5Config::default());
    println!("\n{}", fig5::render(&result));

    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("follow_load_12h", |b| {
        b.iter(|| black_box(fig5::run(&fig5::Fig5Config { hours: 12, seed: 5 }).dcs_visited))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
