//! E-F6 — regenerates Figure 6 (inter-DC scheduling through a flash
//! crowd) and times the quick run.

use criterion::{criterion_group, criterion_main, Criterion};
use pamdc_core::experiments::fig6;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let result = fig6::run(&fig6::Fig6Config::default(), None);
    println!("\n{}", fig6::render(&result));

    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("flash_crowd_3h", |b| {
        b.iter(|| black_box(fig6::run(&fig6::Fig6Config::quick(7), None).sla_during_crowd))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
