//! E-T2 — echoes the paper's Table II and times the constant lookups the
//! profit function leans on.

use criterion::{criterion_group, criterion_main, Criterion};
use pamdc_core::experiments::table2;
use pamdc_infra::network::{City, NetworkModel};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    table2::verify();
    println!("\n{}", table2::render());

    let net = NetworkModel::paper();
    c.bench_function("table2/transport_lookup", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for a in City::ALL {
                for z in City::ALL {
                    acc += net.transport_secs(black_box(a.location()), black_box(z.location()));
                }
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
