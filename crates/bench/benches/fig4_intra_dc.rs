//! E-F4 — regenerates Figure 4 (BF vs BF-OB vs BF-ML, intra-DC) and
//! times a simulated hour under each oracle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pamdc_bench::metric_id;
use pamdc_core::experiments::{fig4, table1};
use pamdc_core::policy::{BestFitPolicy, PlacementPolicy};
use pamdc_core::scenario::ScenarioBuilder;
use pamdc_core::simulation::SimulationRunner;
use pamdc_sched::oracle::{MlOracle, MonitorOracle};
use pamdc_simcore::time::SimDuration;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let training = table1::run(&table1::Table1Config::quick(2013));
    let result = fig4::run(&fig4::Fig4Config::quick(4), &training);
    println!("\n{}", fig4::render(&result));

    // Bench ids derive from the policies' display names through the
    // workspace-wide metric namer, same keys as the runner's reports.
    let bf_id = metric_id(&BestFitPolicy::new(MonitorOracle::plain()).name());
    let bf_ml_id = metric_id(&BestFitPolicy::new(MlOracle::new(training.suite.clone())).name());

    let mut g = c.benchmark_group("fig4_sim_hour");
    g.sample_size(10);
    g.bench_function(BenchmarkId::new("policy", bf_id), |b| {
        b.iter(|| {
            let s = ScenarioBuilder::paper_intra_dc().vms(4).seed(1).build();
            let p = Box::new(BestFitPolicy::new(MonitorOracle::plain()));
            black_box(
                SimulationRunner::new(s, p)
                    .run(SimDuration::from_hours(1))
                    .0
                    .mean_sla,
            )
        })
    });
    g.bench_function(BenchmarkId::new("policy", bf_ml_id), |b| {
        b.iter(|| {
            let s = ScenarioBuilder::paper_intra_dc().vms(4).seed(1).build();
            let p = Box::new(BestFitPolicy::new(MlOracle::new(training.suite.clone())));
            black_box(
                SimulationRunner::new(s, p)
                    .run(SimDuration::from_hours(1))
                    .0
                    .mean_sla,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
