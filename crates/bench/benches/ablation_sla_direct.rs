//! E-AB1 — the paper's §IV-B design note: predicting SLA directly (k-NN)
//! beats predicting RT and converting through the SLA formula.

use criterion::{criterion_group, criterion_main, Criterion};
use pamdc_core::experiments::ablations;
use pamdc_core::training::{build_stage1_datasets, collect_training_data};
use pamdc_ml::predictors::{PredictionTarget, TrainedPredictor};
use pamdc_simcore::rng::RngStream;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let collector = collect_training_data(4, &[0.6, 1.2], 4, 21);
    let stage1 = build_stage1_datasets(&collector);
    let (_, cpu_data) = &stage1[0];
    let mut rng = RngStream::root(21).derive("cpu");
    let cpu_model = TrainedPredictor::train(PredictionTarget::VmCpu, cpu_data, &mut rng);

    let path = ablations::sla_direct_vs_via_rt(&collector, &cpu_model, 21);
    let bias = ablations::monitor_bias(&collector);
    println!("\n{}", ablations::render(&path, &bias));

    let mut g = c.benchmark_group("ablation_sla");
    g.sample_size(10);
    g.bench_function("both_paths", |b| {
        b.iter(|| {
            black_box(
                ablations::sla_direct_vs_via_rt(&collector, &cpu_model, 21)
                    .direct
                    .correlation,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
