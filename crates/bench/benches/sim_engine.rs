//! Micro-benchmarks for the simulation substrate: tick throughput of the
//! full MAPE loop, the event queue, and the RT ground-truth model.

use criterion::{criterion_group, criterion_main, Criterion};
use pamdc_core::policy::{HierarchicalPolicy, StaticPolicy};
use pamdc_core::scenario::ScenarioBuilder;
use pamdc_core::simulation::{RunConfig, SimulationRunner};
use pamdc_perf::prelude::*;
use pamdc_sched::oracle::TrueOracle;
use pamdc_simcore::prelude::*;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim");
    g.sample_size(10);
    g.bench_function("mape_loop_6h_5vms", |b| {
        b.iter(|| {
            let s = ScenarioBuilder::paper_multi_dc().vms(5).seed(3).build();
            let p = Box::new(StaticPolicy(TrueOracle::new()));
            let runner = SimulationRunner::new(s, p).config(RunConfig {
                keep_series: false,
                ..Default::default()
            });
            black_box(runner.run(SimDuration::from_hours(6)).0.total_wh)
        })
    });
    // The full engine: every round runs the two-layer scheduler plus
    // the consolidation pass, so this case sees both the tick-loop
    // scratch reuse and the incremental schedule evaluation.
    g.bench_function("mape_loop_6h_8vms_hierarchical", |b| {
        b.iter(|| {
            let s = ScenarioBuilder::paper_multi_dc()
                .vms(8)
                .pms_per_dc(3)
                .seed(3)
                .build();
            let p = Box::new(HierarchicalPolicy::new(TrueOracle::new()));
            let runner = SimulationRunner::new(s, p).config(RunConfig {
                keep_series: false,
                ..Default::default()
            });
            black_box(runner.run(SimDuration::from_hours(6)).0.total_wh)
        })
    });
    g.finish();

    c.bench_function("event_queue/schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_millis((i * 7919) % 100_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop_next() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });

    let load = OfferedLoad {
        rps: 150.0,
        kb_in_per_req: 0.5,
        kb_out_per_req: 4.0,
        cpu_ms_per_req: 7.0,
        backlog: 100.0,
    };
    let profile = VmPerfProfile::default();
    let req = required_resources(&load, &profile, 60.0);
    let cap = pamdc_infra::resources::Resources::new(400.0, 4096.0, 64000.0, 64000.0);
    let cfg = RtModelConfig::deterministic();
    c.bench_function("perf/rt_evaluate", |b| {
        b.iter(|| {
            black_box(evaluate(
                black_box(&load),
                &profile,
                &req,
                &req,
                &cap,
                &cfg,
                60.0,
                None,
            ))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
