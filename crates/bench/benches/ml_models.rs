//! Micro-benchmarks for the from-scratch learners: fit and predict
//! throughput for M5P, linear regression and k-NN.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pamdc_ml::prelude::*;
use pamdc_simcore::rng::RngStream;
use std::hint::black_box;

fn make_dataset(n: usize, seed: u64) -> Dataset {
    let mut rng = RngStream::root(seed);
    let mut d = Dataset::with_features(&["a", "b", "c", "d", "e"]);
    for _ in 0..n {
        let row: Vec<f64> = (0..5).map(|_| rng.uniform_range(0.0, 10.0)).collect();
        let y = if row[0] < 5.0 {
            2.0 * row[0] + row[1]
        } else {
            30.0 - row[2]
        } + rng.normal(0.0, 0.3);
        d.push(row, y);
    }
    d
}

fn bench(c: &mut Criterion) {
    let mut fit = c.benchmark_group("ml_fit");
    for n in [200usize, 1000, 4000] {
        let d = make_dataset(n, 1);
        fit.bench_with_input(BenchmarkId::new("m5p_m4", n), &d, |b, d| {
            b.iter(|| black_box(M5Tree::fit(d, M5Params::m4()).leaf_count()))
        });
        fit.bench_with_input(BenchmarkId::new("linreg", n), &d, |b, d| {
            b.iter(|| black_box(LinearRegression::fit(d).intercept()))
        });
        fit.bench_with_input(BenchmarkId::new("knn_fit", n), &d, |b, d| {
            b.iter(|| black_box(KnnRegressor::fit(d, 4).len()))
        });
    }
    fit.finish();

    let d = make_dataset(2000, 2);
    let tree = M5Tree::fit(&d, M5Params::m4());
    let knn = KnnRegressor::fit(&d, 4);
    let lin = LinearRegression::fit(&d);
    let q = vec![3.0, 4.0, 5.0, 6.0, 7.0];
    let mut pred = c.benchmark_group("ml_predict");
    pred.bench_function("m5p", |b| b.iter(|| black_box(tree.predict(black_box(&q)))));
    pred.bench_function("knn_2000pts", |b| {
        b.iter(|| black_box(knn.predict(black_box(&q))))
    });
    pred.bench_function("linreg", |b| {
        b.iter(|| black_box(lin.predict(black_box(&q))))
    });
    pred.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
