//! E-SC — regenerates the §IV-C solver-scaling observation (exact B&B
//! explodes; Best-Fit stays flat), times both on growing instances, and
//! compares the consolidation pass's incremental evaluation
//! ([`ScheduleEvaluator`]-backed `improve_schedule`) against the old
//! full-re-evaluation local search (kept here as a reference
//! implementation so the speedup stays measurable).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pamdc_core::experiments::solver_scaling;
use pamdc_sched::bestfit::best_fit;
use pamdc_sched::exact::branch_and_bound;
use pamdc_sched::localsearch::{improve_schedule, LocalSearchConfig};
use pamdc_sched::oracle::{QosOracle, TrueOracle};
use pamdc_sched::problem::{synthetic, Problem, Schedule};
use pamdc_sched::profit::evaluate_schedule;
use std::hint::black_box;

/// The pre-incremental consolidation pass: one `Schedule` clone and one
/// full `evaluate_schedule` per candidate move, plus an O(V·H)
/// `host_demand` rebuild per accepted move. Benchmarked as the baseline
/// the incremental evaluator is measured against.
#[allow(clippy::needless_range_loop)] // verbatim copy of the replaced code
fn improve_schedule_full_reference(
    problem: &Problem,
    oracle: &dyn QosOracle,
    schedule: Schedule,
    cfg: &LocalSearchConfig,
) -> (Schedule, usize) {
    let mut current = schedule;
    let mut current_profit = evaluate_schedule(problem, oracle, &current).profit_eur;
    let mut moves = 0;
    let demands: Vec<_> = problem.vms.iter().map(|vm| oracle.demand(vm)).collect();
    while moves < cfg.max_moves {
        let mut host_demand: Vec<_> = problem.hosts.iter().map(|h| h.fixed_demand).collect();
        for (vi, &pm) in current.assignment.iter().enumerate() {
            let hi = problem.host_index(pm).expect("validated schedule");
            host_demand[hi] += demands[vi];
            host_demand[hi].cpu += problem.hosts[hi].virt_overhead_cpu_per_vm;
        }
        let mut best: Option<(usize, usize, f64)> = None;
        for vi in 0..problem.vms.len() {
            for (hi, host) in problem.hosts.iter().enumerate() {
                if current.assignment[vi] == host.id {
                    continue;
                }
                let mut after = host_demand[hi];
                after += demands[vi];
                after.cpu += host.virt_overhead_cpu_per_vm;
                if after.dominant_share(&host.capacity) > cfg.max_util_after_move {
                    continue;
                }
                let mut candidate = current.clone();
                candidate.assignment[vi] = host.id;
                let p = evaluate_schedule(problem, oracle, &candidate).profit_eur;
                if p > current_profit + cfg.min_gain_eur
                    && best.as_ref().is_none_or(|&(_, _, bp)| p > bp)
                {
                    best = Some((vi, hi, p));
                }
            }
        }
        match best {
            Some((vi, hi, p)) => {
                current.assignment[vi] = problem.hosts[hi].id;
                current_profit = p;
                moves += 1;
            }
            None => break,
        }
    }
    (current, moves)
}

fn bench(c: &mut Criterion) {
    // Quick mode (CI) caps the exact solver earlier: the 8×24 B&B point
    // alone takes a minute, and the regression signal lives in the
    // micro-benchmarks below, not in the demo table.
    let quick = std::env::var("PAMDC_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let scaling_cfg = if quick {
        solver_scaling::ScalingConfig {
            exact_vm_cap: 6,
            ..solver_scaling::ScalingConfig::default()
        }
    } else {
        solver_scaling::ScalingConfig::default()
    };
    let points = solver_scaling::run(&scaling_cfg);
    println!("\n{}", solver_scaling::render(&points));

    let oracle = TrueOracle::new();
    let mut g = c.benchmark_group("solver");
    for (vms, hosts) in [(2usize, 4usize), (4, 8), (6, 12), (10, 40)] {
        let p = synthetic::problem(vms, hosts, 250.0);
        g.bench_with_input(
            BenchmarkId::new("bestfit", format!("{vms}x{hosts}")),
            &p,
            |b, p| b.iter(|| black_box(best_fit(p, &oracle).schedule.assignment.len())),
        );
        if vms <= 6 {
            g.bench_with_input(
                BenchmarkId::new("exact_bnb", format!("{vms}x{hosts}")),
                &p,
                |b, p| b.iter(|| black_box(branch_and_bound(p, &oracle).nodes_expanded)),
            );
        }
    }
    g.finish();

    // Consolidation pass: incremental evaluation vs the old
    // full-re-evaluation reference, from the same spread start.
    let cfg = LocalSearchConfig::default();
    let mut g = c.benchmark_group("local_search");
    for (vms, hosts) in [(6usize, 12usize), (10, 24), (16, 40)] {
        let p = synthetic::problem(vms, hosts, 120.0);
        let start = pamdc_sched::baselines::round_robin(&p);
        // Both searches must agree on the result before we time them.
        let (a, moves_a) = improve_schedule_full_reference(&p, &oracle, start.clone(), &cfg);
        let (b, moves_b) = improve_schedule(&p, &oracle, start.clone(), &cfg);
        assert_eq!(
            moves_a, moves_b,
            "reference and incremental must accept the same moves"
        );
        assert_eq!(
            a, b,
            "reference and incremental must produce the same schedule"
        );
        g.bench_with_input(
            BenchmarkId::new("full_reference", format!("{vms}x{hosts}")),
            &(&p, &start),
            |bench, (p, start)| {
                bench.iter(|| {
                    black_box(improve_schedule_full_reference(p, &oracle, (*start).clone(), &cfg).1)
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("incremental", format!("{vms}x{hosts}")),
            &(&p, &start),
            |bench, (p, start)| {
                bench.iter(|| black_box(improve_schedule(p, &oracle, (*start).clone(), &cfg).1))
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
