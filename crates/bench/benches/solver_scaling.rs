//! E-SC — regenerates the §IV-C solver-scaling observation (exact B&B
//! explodes; Best-Fit stays flat) and times both on growing instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pamdc_core::experiments::solver_scaling;
use pamdc_sched::bestfit::best_fit;
use pamdc_sched::exact::branch_and_bound;
use pamdc_sched::oracle::TrueOracle;
use pamdc_sched::problem::synthetic;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let points = solver_scaling::run(&solver_scaling::ScalingConfig::default());
    println!("\n{}", solver_scaling::render(&points));

    let oracle = TrueOracle::new();
    let mut g = c.benchmark_group("solver");
    for (vms, hosts) in [(2usize, 4usize), (4, 8), (6, 12), (10, 40)] {
        let p = synthetic::problem(vms, hosts, 250.0);
        g.bench_with_input(
            BenchmarkId::new("bestfit", format!("{vms}x{hosts}")),
            &p,
            |b, p| b.iter(|| black_box(best_fit(p, &oracle).schedule.assignment.len())),
        );
        if vms <= 6 {
            g.bench_with_input(
                BenchmarkId::new("exact_bnb", format!("{vms}x{hosts}")),
                &p,
                |b, p| b.iter(|| black_box(branch_and_bound(p, &oracle).nodes_expanded)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
