//! E-F8 — regenerates Figure 8 (SLA vs energy vs load) and times one
//! sweep point.

use criterion::{criterion_group, criterion_main, Criterion};
use pamdc_core::experiments::fig8;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let surface = fig8::run(&fig8::Fig8Config::default());
    println!("\n{}", fig8::render(&surface));

    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("sweep_quick", |b| {
        b.iter(|| black_box(fig8::run(&fig8::Fig8Config::quick(9)).points.len()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
