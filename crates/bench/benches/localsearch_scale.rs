//! Consolidation-at-scale tier: the incremental local search vs the
//! full-rescan reference on fleets where the reference's O(VMs × hosts)
//! sweep per accepted move is the round's dominant cost — plus one full
//! hierarchical round at 10000×1000 with consolidation **enabled**, the
//! configuration earlier planet-scale benches had to switch off.
//!
//! Both search implementations must produce bit-identical schedules
//! (asserted here before timing, and property-tested in
//! `pamdc-sched/tests/localsearch_equivalence.rs`), so the only thing
//! this bench measures is speed.
//!
//! Quick mode (`PAMDC_BENCH_QUICK=1`, the CI setting) skips timing the
//! reference on the 10000×1000 tier — a single sweep is ~10 M scored
//! pairs per move — so its baseline id is simply absent from quick
//! runs; the perf gate ignores ids missing from one side.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pamdc_infra::ids::PmId;
use pamdc_sched::hierarchical::{hierarchical_round, HierarchicalConfig};
use pamdc_sched::localsearch::{
    improve_schedule_incremental, improve_schedule_reference, LocalSearchConfig,
};
use pamdc_sched::oracle::TrueOracle;
use pamdc_sched::problem::{synthetic, Problem, Schedule};
use std::hint::black_box;

/// The same large single-flavor fleet as `bestfit_scale`: residency
/// scattered across all hosts, ~27 CPU units per VM against 400-unit
/// Atoms (the 10000×1000 tier sits around 70% fleet utilisation).
fn fleet(vms: usize, hosts: usize) -> Problem {
    let mut p = synthetic::problem(vms, hosts, 30.0);
    for (i, vm) in p.vms.iter_mut().enumerate() {
        let hi = i % hosts;
        vm.current_pm = Some(PmId::from_index(hi));
        vm.current_location = Some(p.hosts[hi].location);
    }
    p
}

/// A start schedule with consolidation work in it: the fleet packs onto
/// the front 90% of hosts (~11 VMs each, ~78% post-move share — above
/// the default 0.45 headroom cap, so the index rejects those whole
/// groups in O(1)) while the tail 10% each hold one straggler VM
/// (~13% post-move share). Merging stragglers empties their hosts —
/// the energy win the local search exists to find — and keeps every
/// legal destination inside the straggler tail, which is the shape the
/// candidate index collapses to a handful of groups.
fn straggler_start(p: &Problem) -> Schedule {
    let hosts = p.hosts.len();
    let stragglers = hosts / 10;
    let front = hosts - stragglers;
    Schedule {
        assignment: (0..p.vms.len())
            .map(|vi| {
                if vi < stragglers {
                    PmId::from_index(front + vi)
                } else {
                    PmId::from_index((vi - stragglers) % front)
                }
            })
            .collect(),
    }
}

fn bench(c: &mut Criterion) {
    let quick = std::env::var("PAMDC_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let oracle = TrueOracle::new();
    // Default knobs except the move cap: 24 moves folds a real chunk of
    // the straggler tail, so accepted-move maintenance is measured too,
    // not just the initial candidate build.
    let cfg = LocalSearchConfig {
        max_moves: 24,
        ..Default::default()
    };

    let mut g = c.benchmark_group("localsearch_scale");
    for (vms, hosts) in [(2000usize, 200usize), (10000, 1000)] {
        let p = fleet(vms, hosts);
        let start = straggler_start(&p);
        let tier = format!("{vms}x{hosts}");
        let big = vms >= 10000;

        // The two implementations must agree bit-for-bit before either
        // is timed. On the big tier this is the one full-rescan pass
        // quick mode still pays; it doubles as the equality check.
        if !quick || !big {
            let (ref_sched, ref_moves) =
                improve_schedule_reference(&p, &oracle, start.clone(), &cfg);
            let (inc_sched, inc_moves) =
                improve_schedule_incremental(&p, &oracle, start.clone(), &cfg);
            assert_eq!(ref_moves, inc_moves, "{tier}: move counts diverged");
            assert_eq!(ref_sched, inc_sched, "{tier}: schedules diverged");
            assert!(
                inc_moves > 0,
                "{tier}: the straggler start must give consolidation real work"
            );
            println!("localsearch_scale/{tier}: {inc_moves} moves accepted");
        }

        g.bench_with_input(
            BenchmarkId::new("incremental", &tier),
            &(&p, &start),
            |b, (p, start)| {
                b.iter(|| {
                    black_box(improve_schedule_incremental(p, &oracle, (*start).clone(), &cfg).1)
                })
            },
        );
        if !quick || !big {
            g.bench_with_input(
                BenchmarkId::new("reference", &tier),
                &(&p, &start),
                |b, (p, start)| {
                    b.iter(|| {
                        black_box(improve_schedule_reference(p, &oracle, (*start).clone(), &cfg).1)
                    })
                },
            );
        }
    }
    g.finish();

    // One full hierarchical round at the big tier with consolidation
    // ENABLED — the end-to-end shape earlier planet-scale benches ran
    // with `local_search: None` because the full-rescan pass blew the
    // budget. The incremental pass makes the complete round gateable.
    let mut g = c.benchmark_group("localsearch_scale_round");
    let p = fleet(10000, 1000);
    let hier = HierarchicalConfig {
        local_search: Some(cfg.clone()),
        ..Default::default()
    };
    let (_, stats) = hierarchical_round(&p, &oracle, &hier);
    println!(
        "localsearch_scale_round/10000x1000: {} shards, {} intra VMs, {} escalated, {} consolidation moves",
        stats.shards, stats.intra_vms, stats.global_vms, stats.consolidation_moves
    );
    g.bench_with_input(
        BenchmarkId::new("full_round_consolidated", "10000x1000"),
        &p,
        |b, p| b.iter(|| black_box(hierarchical_round(p, &oracle, &hier).1.shards)),
    );
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
