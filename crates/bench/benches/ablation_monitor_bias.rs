//! E-AB2 — quantifies the monitor bias of §V-B: a saturated VM's
//! observed usage underestimates its true demand, which is why plain
//! Best-Fit over-consolidates.

use criterion::{criterion_group, criterion_main, Criterion};
use pamdc_core::experiments::ablations;
use pamdc_core::training::collect_training_data;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let collector = collect_training_data(4, &[0.8, 1.6], 4, 22);
    let bias = ablations::monitor_bias(&collector);
    println!(
        "\nMonitor bias: obs/demand CPU = {:.3} unsaturated vs {:.3} saturated \
         ({} / {} samples)",
        bias.unsaturated_ratio, bias.saturated_ratio, bias.counts.0, bias.counts.1
    );
    assert!(
        bias.saturated_ratio < bias.unsaturated_ratio,
        "saturated observations must under-report demand"
    );

    c.bench_function("ablation_bias/compute", |b| {
        b.iter(|| black_box(ablations::monitor_bias(&collector).saturated_ratio))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
