//! HPC ablation: the deterministic parallel experiment sweep
//! ([`pamdc_simcore::par::parallel_map`]) vs the same sweep run
//! sequentially — the speedup that makes the Figure-8 surface and the
//! training pipeline affordable.

use criterion::{criterion_group, criterion_main, Criterion};
use pamdc_core::policy::HierarchicalPolicy;
use pamdc_core::scenario::ScenarioBuilder;
use pamdc_core::simulation::{RunConfig, SimulationRunner};
use pamdc_sched::oracle::TrueOracle;
use pamdc_simcore::par::parallel_map;
use pamdc_simcore::time::SimDuration;
use std::hint::black_box;

fn run_point(load_scale: f64) -> f64 {
    let s = ScenarioBuilder::paper_multi_dc()
        .vms(4)
        .load_scale(load_scale)
        .seed(11)
        .build();
    let p = Box::new(HierarchicalPolicy::new(TrueOracle::new()));
    SimulationRunner::new(s, p)
        .config(RunConfig {
            keep_series: false,
            ..Default::default()
        })
        .run(SimDuration::from_hours(2))
        .0
        .mean_sla
}

const SCALES: [f64; 4] = [0.5, 1.0, 1.5, 2.0];

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep_4_points");
    g.sample_size(10);
    g.bench_function("sequential", |b| {
        b.iter(|| {
            let v: Vec<f64> = SCALES.iter().map(|&s| run_point(s)).collect();
            black_box(v)
        })
    });
    g.bench_function("parallel_map", |b| {
        b.iter(|| {
            let v: Vec<f64> = parallel_map(SCALES.to_vec(), run_point);
            black_box(v)
        })
    });
    g.finish();

    // Parallel and sequential sweeps must agree exactly (deterministic
    // derived RNG streams).
    let seq: Vec<f64> = SCALES.iter().map(|&s| run_point(s)).collect();
    let par: Vec<f64> = parallel_map(SCALES.to_vec(), run_point);
    assert_eq!(
        seq, par,
        "parallel sweep must be bit-identical to sequential"
    );
    println!(
        "parallel sweep verified bit-identical to sequential over {} points",
        SCALES.len()
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
