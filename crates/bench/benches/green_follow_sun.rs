//! E-GR — regenerates the follow-the-sun extension table (future work 3)
//! and times one paired comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use pamdc_core::experiments::green;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let result = green::run(&green::GreenConfig::default());
    println!("\n{}", green::render(&result));

    let mut g = c.benchmark_group("green_follow_sun");
    g.sample_size(10);
    g.bench_function("both_arms_quick", |b| {
        b.iter(|| black_box(green::run(&green::GreenConfig::quick(3)).green_fraction_gain()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
