//! E-DL — regenerates the §V-C de-location comparison and times both
//! arms.

use criterion::{criterion_group, criterion_main, Criterion};
use pamdc_core::experiments::deloc;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = deloc::DelocConfig::default();
    let result = deloc::run(&cfg);
    println!("\n{}", deloc::render(&result, cfg.vms));

    let mut g = c.benchmark_group("deloc");
    g.sample_size(10);
    g.bench_function("both_arms_quick", |b| {
        b.iter(|| black_box(deloc::run(&deloc::DelocConfig::quick(6)).sla_gain()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
