//! Planet-scale placement tier: indexed-shortlist Best-Fit vs the
//! literal Algorithm 1 full scan on fleets far beyond the paper's
//! two-digit instances, plus one sharded hierarchical round.
//!
//! The full scan is O(VMs × hosts) marginal-profit evaluations; the
//! bucketed candidate index scores one representative per
//! host-equivalence group instead. Both must produce bit-identical
//! schedules (asserted here before timing, and property-tested in
//! `pamdc-sched/tests/shortlist_equivalence.rs`), so the only thing this
//! bench measures is speed.
//!
//! Quick mode (`PAMDC_BENCH_QUICK=1`, the CI setting) skips timing the
//! full scan on the 10000×1000 tier — a single pass is ~10 M scored
//! pairs — so its baseline id is simply absent from quick runs; the
//! perf gate ignores ids missing from one side.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pamdc_infra::ids::PmId;
use pamdc_infra::resources::Resources;
use pamdc_sched::bestfit::{best_fit_full_scan, best_fit_indexed};
use pamdc_sched::hierarchical::{hierarchical_round, HierarchicalConfig};
use pamdc_sched::oracle::{QosOracle, TrueOracle};
use pamdc_sched::problem::{synthetic, Problem};
use std::hint::black_box;

/// A large fleet the synthetic fixture cannot express on its own:
/// residency scattered across all hosts, so every DC shard has work and
/// the stay/migrate trade-off is exercised. All VMs share one flavor
/// (the cloud-provider norm) — that is what the candidate index feeds
/// on: hosts holding the same number of same-flavor VMs are bitwise
/// interchangeable, so the fleet collapses to a handful of equivalence
/// groups per round. (Fully heterogeneous demands degrade the index
/// towards the full scan's cost — never its answers; see
/// `shortlist_equivalence.rs` — so this tier measures the intended
/// deployment shape.) ~27 CPU units per VM incl. hypervisor overhead
/// against 400-unit Atoms: the 10000×1000 tier settles around 70% fleet
/// utilisation with no overflow.
fn fleet(vms: usize, hosts: usize) -> Problem {
    let mut p = synthetic::problem(vms, hosts, 30.0);
    for (i, vm) in p.vms.iter_mut().enumerate() {
        let hi = i % hosts;
        vm.current_pm = Some(PmId::from_index(hi));
        vm.current_location = Some(p.hosts[hi].location);
    }
    p
}

fn bench(c: &mut Criterion) {
    let quick = std::env::var("PAMDC_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let oracle = TrueOracle::new();

    let mut g = c.benchmark_group("bestfit_scale");
    for (vms, hosts) in [(2000usize, 200usize), (10000, 1000)] {
        let p = fleet(vms, hosts);
        let demands: Vec<Resources> = p.vms.iter().map(|vm| oracle.demand(vm)).collect();
        let tier = format!("{vms}x{hosts}");
        let big = vms >= 10000;

        // The two implementations must agree bit-for-bit before either
        // is timed. On the big tier this is the one full-scan pass quick
        // mode still pays; it doubles as the equality check.
        if !quick || !big {
            let full = best_fit_full_scan(&p, &oracle, &demands);
            let indexed = best_fit_indexed(&p, &oracle, &demands);
            assert_eq!(full.schedule, indexed.schedule, "{tier}: diverged");
            assert_eq!(full.overflow_count, indexed.overflow_count);
            assert_eq!(full.overflow_count, 0, "{tier}: tier must not overflow");
            println!(
                "bestfit_scale/{tier}: full scan scored {} candidates, index scored {} ({}x fewer)",
                full.scored_candidates,
                indexed.scored_candidates,
                full.scored_candidates / indexed.scored_candidates.max(1)
            );
        }

        g.bench_with_input(
            BenchmarkId::new("indexed", &tier),
            &(&p, &demands),
            |b, (p, demands)| {
                b.iter(|| {
                    black_box(
                        best_fit_indexed(p, &oracle, demands)
                            .schedule
                            .assignment
                            .len(),
                    )
                })
            },
        );
        if !quick || !big {
            g.bench_with_input(
                BenchmarkId::new("full_scan", &tier),
                &(&p, &demands),
                |b, (p, demands)| {
                    b.iter(|| {
                        black_box(
                            best_fit_full_scan(p, &oracle, demands)
                                .schedule
                                .assignment
                                .len(),
                        )
                    })
                },
            );
        }
    }
    g.finish();

    // One sharded hierarchical round at the mid tier: per-DC intra
    // passes fan out in parallel, then the global pass runs over the
    // shard summaries. Consolidation is disabled — it has its own bench
    // (`solver_scaling/local_search`) and would dominate the timing.
    let mut g = c.benchmark_group("hierarchical_scale");
    let p = fleet(2000, 200);
    let cfg = HierarchicalConfig {
        local_search: None,
        ..Default::default()
    };
    let (_, stats) = hierarchical_round(&p, &oracle, &cfg);
    println!(
        "hierarchical_scale/2000x200: {} shards, {} intra VMs, {} escalated, {} offered hosts",
        stats.shards, stats.intra_vms, stats.global_vms, stats.offered_hosts
    );
    g.bench_with_input(BenchmarkId::new("sharded_round", "2000x200"), &p, |b, p| {
        b.iter(|| black_box(hierarchical_round(p, &oracle, &cfg).1.shards))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
