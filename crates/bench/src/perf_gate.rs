//! The CI perf-regression gate: compare a fresh `PAMDC_BENCH_JSON`
//! emission against the checked-in baseline and fail on slowdowns
//! beyond a tolerance factor.
//!
//! Both inputs are parsed with a deliberately tiny scanner that only
//! needs the `"id"`/`"median_ns"` pairs — it accepts the shim emitter's
//! JSON-lines form *and* the pretty-printed `BENCH_solver_scaling.json`
//! baseline (whose `results` array carries the same pairs), so the gate
//! needs no JSON dependency. Ids present on only one side are reported
//! but never fail the gate (quick mode legitimately skips the largest
//! exact-solver points; new benches have no baseline yet).
//!
//! The default tolerance is **2.0×** (see `docs/PERF.md`): CI quick
//! mode takes few samples on shared runners, so the gate is a
//! catch-order-of-magnitude-regressions net, not a statistical judge.

/// One id compared across both files.
#[derive(Clone, Debug, PartialEq)]
pub struct Comparison {
    /// Benchmark id (`group/function/param`).
    pub id: String,
    /// Baseline median, nanoseconds.
    pub baseline_ns: f64,
    /// Current median, nanoseconds.
    pub current_ns: f64,
}

impl Comparison {
    /// Slowdown factor (>1 = slower than the baseline).
    pub fn ratio(&self) -> f64 {
        if self.baseline_ns <= 0.0 {
            f64::INFINITY
        } else {
            self.current_ns / self.baseline_ns
        }
    }
}

/// The gate's verdict over every comparable id.
#[derive(Clone, Debug, Default)]
pub struct GateReport {
    /// Ids present in both files, in baseline order.
    pub compared: Vec<Comparison>,
    /// Baseline ids the current run did not produce.
    pub missing_current: Vec<String>,
    /// Current ids the baseline does not know (new benches).
    pub missing_baseline: Vec<String>,
}

impl GateReport {
    /// The comparisons exceeding `tolerance` (the gate's failures).
    pub fn regressions(&self, tolerance: f64) -> Vec<&Comparison> {
        self.compared
            .iter()
            .filter(|c| c.ratio() > tolerance)
            .collect()
    }

    /// Renders the comparison table plus verdict lines. Every row shows
    /// its margin to the threshold — on success too, so a bench drifting
    /// toward the limit is visible in green CI logs, not only after it
    /// finally trips the gate.
    pub fn render(&self, tolerance: f64) -> String {
        let mut out = String::new();
        let width = self
            .compared
            .iter()
            .map(|c| c.id.len())
            .max()
            .unwrap_or(2)
            .max("id".len());
        out.push_str(&format!(
            "{:width$}  {:>12}  {:>12}  {:>7}  {:>7}  {:>9}\n",
            "id", "baseline", "current", "ratio", "limit", "headroom"
        ));
        for c in &self.compared {
            let ratio = c.ratio();
            // How much slower this bench may still get before failing:
            // limit/ratio, as a multiplier (1.00x = at the limit).
            let headroom = if ratio > 0.0 {
                format!("{:>8.2}x", tolerance / ratio)
            } else {
                format!("{:>9}", "inf")
            };
            let flag = if ratio > tolerance { "  << FAIL" } else { "" };
            out.push_str(&format!(
                "{:width$}  {:>10.1}ns  {:>10.1}ns  {:>6.2}x  {:>6.2}x  {headroom}{flag}\n",
                c.id, c.baseline_ns, c.current_ns, ratio, tolerance,
            ));
        }
        for id in &self.missing_current {
            out.push_str(&format!("{id}: in baseline only (skipped this run)\n"));
        }
        for id in &self.missing_baseline {
            out.push_str(&format!("{id}: no baseline yet (not gated)\n"));
        }
        let failures = self.regressions(tolerance);
        if failures.is_empty() {
            out.push_str(&format!(
                "perf gate OK: {} ids within {tolerance}x of the baseline\n",
                self.compared.len()
            ));
        } else {
            out.push_str(&format!(
                "perf gate FAILED: {}/{} ids regressed beyond {tolerance}x \
                 (see docs/PERF.md; update BENCH_solver_scaling.json only for \
                 intentional changes)\n",
                failures.len(),
                self.compared.len()
            ));
        }
        out
    }
}

/// Extracts every `("id", median_ns)` pair from a results file — the
/// shim's JSON-lines emission or the pretty-printed baseline alike.
/// Later duplicates of an id win (a re-run appends to JSON-lines).
///
/// Pairing is strict: each id's `median_ns` must appear **before the
/// next `"id"` key** (i.e. inside its own record), and every median
/// must be a finite, positive number. A record that omits its median, a
/// `NaN`/`Infinity` emission, or a zero/negative baseline would
/// otherwise make the gate silently vacuous — a NaN ratio compares
/// false against any tolerance — so all of them are loud errors here
/// instead of skipped pairs.
pub fn parse_medians(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut out: Vec<(String, f64)> = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find("\"id\"") {
        rest = &rest[pos + 4..];
        let Some(id) = next_string(rest) else {
            return Err("\"id\" key without a string value".into());
        };
        // The median must belong to this record: search only up to the
        // next "id". Without the bound, a record that omits its median
        // steals the next record's and every later pairing shifts.
        let scope_end = rest.find("\"id\"").unwrap_or(rest.len());
        let Some(mpos) = rest[..scope_end].find("\"median_ns\"") else {
            return Err(format!(
                "record {id:?} has no median_ns (mispaired or truncated results)"
            ));
        };
        let after = &rest[mpos + "\"median_ns\"".len()..];
        let Some(value) = next_number(after) else {
            return Err(format!("record {id:?}: median_ns has no numeric value"));
        };
        if !value.is_finite() || value <= 0.0 {
            return Err(format!(
                "record {id:?}: median_ns must be finite and > 0, got {value} \
                 (a NaN or zero median makes every ratio comparison vacuous)"
            ));
        }
        if let Some(slot) = out.iter_mut().find(|(k, _)| *k == id) {
            slot.1 = value;
        } else {
            out.push((id, value));
        }
    }
    Ok(out)
}

/// The first JSON string after a `:` in `text`.
fn next_string(text: &str) -> Option<String> {
    let colon = text.find(':')?;
    let rest = text[colon + 1..].trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// The first number after a `:` in `text` (terminated by `,`, `}` or
/// whitespace).
fn next_number(text: &str) -> Option<f64> {
    let colon = text.find(':')?;
    let rest = text[colon + 1..].trim_start();
    let end = rest
        .find(|c: char| c == ',' || c == '}' || c.is_whitespace())
        .unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Compares two parsed result sets.
pub fn compare(current: &[(String, f64)], baseline: &[(String, f64)]) -> GateReport {
    let mut report = GateReport::default();
    for (id, baseline_ns) in baseline {
        match current.iter().find(|(k, _)| k == id) {
            Some((_, current_ns)) => report.compared.push(Comparison {
                id: id.clone(),
                baseline_ns: *baseline_ns,
                current_ns: *current_ns,
            }),
            None => report.missing_current.push(id.clone()),
        }
    }
    for (id, _) in current {
        if !baseline.iter().any(|(k, _)| k == id) {
            report.missing_baseline.push(id.clone());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINES: &str = r#"{"id":"solver/bestfit/2x4","median_ns":1200.0,"mean_ns":1.0,"min_ns":1.0,"max_ns":2.0,"samples":3}
{"id":"local_search/incremental/6x12","median_ns":56000.0,"mean_ns":1.0,"min_ns":1.0,"max_ns":2.0,"samples":3}
"#;

    const BASELINE: &str = r#"{
  "bench": "solver_scaling",
  "note": "text that mentions \"median_ns\" nowhere harmful",
  "results": [
    {
      "id": "solver/bestfit/2x4",
      "median_ns": 1198.4,
      "mean_ns": 1201.9
    },
    {
      "id": "solver/exact_bnb/2x4",
      "median_ns": 3195.5
    }
  ]
}"#;

    #[test]
    fn parses_both_shapes() {
        let lines = parse_medians(LINES).expect("lines");
        assert_eq!(
            lines,
            vec![
                ("solver/bestfit/2x4".to_string(), 1200.0),
                ("local_search/incremental/6x12".to_string(), 56000.0),
            ]
        );
        let base = parse_medians(BASELINE).expect("baseline");
        assert_eq!(base.len(), 2);
        assert_eq!(base[0].0, "solver/bestfit/2x4");
        assert!((base[0].1 - 1198.4).abs() < 1e-9);
    }

    #[test]
    fn rerun_appends_and_last_value_wins() {
        let twice = format!("{LINES}{}", LINES.replace("1200.0", "1300.0"));
        let parsed = parse_medians(&twice).expect("rerun");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].1, 1300.0);
    }

    #[test]
    fn mispaired_records_error_instead_of_stealing_the_next_median() {
        // Record "a" omits its median: the old scanner silently paired
        // "a" with "b"'s value (or dropped records); now it's loud.
        let mispaired = r#"{"id":"a","mean_ns":1.0}
{"id":"b","median_ns":5.0}
"#;
        let err = parse_medians(mispaired).unwrap_err();
        assert!(
            err.contains("\"a\"") && err.contains("no median_ns"),
            "{err}"
        );
        // A trailing median-less record is equally fatal, not skipped.
        let truncated = r#"{"id":"a","median_ns":5.0}
{"id":"b","mean_ns":2.0}
"#;
        let err = parse_medians(truncated).unwrap_err();
        assert!(err.contains("\"b\""), "{err}");
    }

    #[test]
    fn non_finite_and_non_positive_medians_error() {
        for bad in ["NaN", "inf", "0", "0.0", "-12.5"] {
            let doc = format!("{{\"id\":\"x\",\"median_ns\":{bad}}}\n");
            let err = parse_medians(&doc).unwrap_err();
            assert!(err.contains("finite and > 0"), "{bad}: {err}");
        }
        let err = parse_medians("{\"id\":\"x\",\"median_ns\":fast}").unwrap_err();
        assert!(err.contains("no numeric value"), "{err}");
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_beyond() {
        let current = parse_medians(LINES).expect("lines");
        let baseline = parse_medians(BASELINE).expect("baseline");
        let report = compare(&current, &baseline);
        assert_eq!(report.compared.len(), 1);
        assert_eq!(report.missing_current, vec!["solver/exact_bnb/2x4"]);
        assert_eq!(
            report.missing_baseline,
            vec!["local_search/incremental/6x12"]
        );
        assert!(report.regressions(2.0).is_empty(), "1.00x is fine");
        // Success rows still show the margin to the threshold.
        let ok = report.render(2.0);
        assert!(ok.contains("limit") && ok.contains("headroom"), "{ok}");
        assert!(ok.contains("2.00x"), "limit column rendered: {ok}");
        assert!(!ok.contains("FAIL"), "{ok}");
        // A 3x regression trips the default gate.
        let slow = vec![("solver/bestfit/2x4".to_string(), 3600.0)];
        let report = compare(&slow, &baseline);
        assert_eq!(report.regressions(2.0).len(), 1);
        assert!((report.compared[0].ratio() - 3.0043).abs() < 1e-3);
        let failed = report.render(2.0);
        assert!(failed.contains("FAILED"));
        // headroom < 1x on the failing row: 2.0 / 3.0043 = 0.67.
        assert!(failed.contains("0.67x"), "{failed}");
        // ...but a loosened tolerance lets it pass.
        assert!(report.regressions(4.0).is_empty());
        assert!(report.render(4.0).contains("perf gate OK"));
    }

    #[test]
    fn the_checked_in_baseline_parses() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_solver_scaling.json"
        );
        let text = std::fs::read_to_string(path).expect("baseline file");
        let parsed = parse_medians(&text).expect("baseline parses cleanly");
        assert!(
            parsed.len() >= 10,
            "baseline carries {} gateable ids",
            parsed.len()
        );
        assert!(parsed
            .iter()
            .any(|(id, _)| id == "local_search/incremental/6x12"));
        assert!(parsed.iter().all(|(_, ns)| *ns > 0.0));
    }

    #[test]
    fn degenerate_inputs_error_loudly_not_silently() {
        assert!(parse_medians("").expect("empty is fine").is_empty());
        assert!(parse_medians("{\"id\":").is_err(), "dangling id key");
        assert!(
            parse_medians("\"id\" nonsense \"median_ns\" more").is_err(),
            "id without a string value"
        );
        let report = compare(&[], &[]);
        assert!(report.regressions(2.0).is_empty());
        assert!(report.render(2.0).contains("0 ids"));
    }
}
