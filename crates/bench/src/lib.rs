//! # pamdc-bench — the benchmark harness
//!
//! One Criterion bench per table/figure of the paper (each prints the
//! regenerated rows once, then times the computation that produces
//! them), plus micro-benchmarks for the learners, the simulation engine,
//! and a sequential-vs-parallel sweep ablation.
//!
//! Benchmark ids feed the `PAMDC_BENCH_JSON` emitter (perf baselines
//! such as `BENCH_solver_scaling.json`); build them through
//! [`metric_id`] so they use the same key namer as the scenario
//! runner's metrics and the CLI's CSV/JSON output.

pub mod perf_gate;

/// The workspace-wide metric/bench-id sanitizer
/// ([`pamdc_core::report::metric_key`]): keeps `[A-Za-z0-9_./-]`, maps
/// everything else to `_`. Existing ids like `solver_scaling/local_search/80`
/// pass through unchanged, so recorded baselines stay comparable.
pub fn metric_id(raw: &str) -> String {
    pamdc_core::report::metric_key(raw)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_survive_and_display_names_sanitize() {
        assert_eq!(
            metric_id("solver_scaling/bestfit/10x40"),
            "solver_scaling/bestfit/10x40"
        );
        assert_eq!(metric_id("policy/bestfit[BF-OB]"), "policy/bestfit_BF-OB_");
    }
}
