//! # pamdc-bench — the benchmark harness
//!
//! One Criterion bench per table/figure of the paper (each prints the
//! regenerated rows once, then times the computation that produces
//! them), plus micro-benchmarks for the learners, the simulation engine,
//! and a sequential-vs-parallel sweep ablation.
