//! `perf-gate` — CI perf-regression gate over `PAMDC_BENCH_JSON`
//! emissions (see `docs/PERF.md`).
//!
//! ```text
//! perf-gate <current.json> <baseline.json> [--tolerance 2.0]
//! ```
//!
//! Exits 0 when every id shared by both files is within `tolerance`×
//! of its baseline median, 1 when any id regressed beyond it, 2 on
//! usage or I/O errors.

use pamdc_bench::perf_gate::{compare, parse_medians};
use std::process::ExitCode;

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<&String> = Vec::new();
    let mut tolerance = 2.0f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerance" => {
                i += 1;
                tolerance = args
                    .get(i)
                    .ok_or("--tolerance needs a value")?
                    .parse()
                    .map_err(|_| "--tolerance needs a number".to_string())?;
                if !(tolerance.is_finite() && tolerance > 0.0) {
                    return Err("--tolerance must be finite and > 0".into());
                }
            }
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            _ => files.push(&args[i]),
        }
        i += 1;
    }
    let [current_path, baseline_path] = files.as_slice() else {
        return Err("usage: perf-gate <current.json> <baseline.json> [--tolerance 2.0]".into());
    };
    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let current =
        parse_medians(&read(current_path)?).map_err(|e| format!("{current_path}: {e}"))?;
    if current.is_empty() {
        return Err(format!("{current_path}: no benchmark results found"));
    }
    let baseline =
        parse_medians(&read(baseline_path)?).map_err(|e| format!("{baseline_path}: {e}"))?;
    if baseline.is_empty() {
        return Err(format!("{baseline_path}: no benchmark results found"));
    }
    let report = compare(&current, &baseline);
    print!("{}", report.render(tolerance));
    Ok(report.regressions(tolerance).is_empty())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}
