//! `hier-jobs` — the CI multi-core lane: one sharded hierarchical round
//! timed at `PAMDC_PAR_WORKERS=1` and `=2`, reporting the speedup ratio.
//!
//! ```text
//! hier_jobs [--out hier-jobs.json] [--rounds 3]
//! ```
//!
//! The ratio is **recorded, never gated**: CI runners make no core
//! count promises, so a gate on parallel speedup would flake. What IS
//! asserted (and exits non-zero on failure) is determinism — the round
//! must produce bit-identical schedules at any worker count. The JSON
//! record deliberately carries no `"id"` key, so the perf gate's
//! scanner never picks it up even when the file is concatenated with
//! gated emissions.

use pamdc_infra::ids::PmId;
use pamdc_sched::hierarchical::{hierarchical_round, HierarchicalConfig};
use pamdc_sched::oracle::TrueOracle;
use pamdc_sched::problem::{synthetic, Problem};
use std::process::ExitCode;
use std::time::Instant;

/// The `bestfit_scale` mid-tier fleet: 2000 VMs over 200 hosts,
/// residency scattered so every DC shard has work.
fn fleet(vms: usize, hosts: usize) -> Problem {
    let mut p = synthetic::problem(vms, hosts, 30.0);
    for (i, vm) in p.vms.iter_mut().enumerate() {
        let hi = i % hosts;
        vm.current_pm = Some(PmId::from_index(hi));
        vm.current_location = Some(p.hosts[hi].location);
    }
    p
}

fn run() -> Result<String, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<String> = None;
    let mut rounds = 3usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = Some(args.get(i).ok_or("--out needs a path")?.clone());
            }
            "--rounds" => {
                i += 1;
                rounds = args
                    .get(i)
                    .ok_or("--rounds needs a value")?
                    .parse()
                    .map_err(|_| "--rounds needs a positive integer".to_string())?;
                if rounds == 0 {
                    return Err("--rounds must be >= 1".into());
                }
            }
            other => return Err(format!("unknown option {other}")),
        }
        i += 1;
    }

    let p = fleet(2000, 200);
    let oracle = TrueOracle::new();
    let cfg = HierarchicalConfig::default();

    // Best-of-N wall time per worker budget. The env cap is read by
    // `pamdc_simcore::par::parallel_map_bounded` inside the round's
    // shard fan-out; everything else in the round is sequential.
    let mut timed = Vec::new();
    for workers in [1usize, 2] {
        std::env::set_var("PAMDC_PAR_WORKERS", workers.to_string());
        let mut best_ns = u128::MAX;
        let mut schedule = None;
        for _ in 0..rounds {
            let t = Instant::now();
            let (s, _) = hierarchical_round(&p, &oracle, &cfg);
            best_ns = best_ns.min(t.elapsed().as_nanos());
            schedule = Some(s);
        }
        timed.push((workers, best_ns, schedule.expect("rounds >= 1")));
    }
    std::env::remove_var("PAMDC_PAR_WORKERS");

    let (_, ns_1, ref sched_1) = timed[0];
    let (_, ns_2, ref sched_2) = timed[1];
    if sched_1 != sched_2 {
        return Err("hierarchical_round diverged between 1 and 2 workers".into());
    }
    let ratio = ns_1 as f64 / (ns_2 as f64).max(1.0);
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let line = format!(
        "{{\"bench\":\"hier_jobs/sharded_round/2000x200\",\"jobs1_ns\":{ns_1},\"jobs2_ns\":{ns_2},\
         \"speedup\":{ratio:.3},\"rounds\":{rounds},\"host_cores\":{cores}}}\n"
    );
    if let Some(path) = out {
        std::fs::write(&path, &line).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    Ok(line)
}

fn main() -> ExitCode {
    match run() {
        Ok(line) => {
            print!("{line}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("hier_jobs: {e}");
            ExitCode::from(2)
        }
    }
}
