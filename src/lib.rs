//! # pamdc — Power-Aware Multi-DataCenter Management using Machine Learning
//!
//! A from-scratch reproduction of Berral, Gavaldà and Torres,
//! *"Power-aware Multi-DataCenter Management using Machine Learning"*
//! (ICPP 2013), as a production-quality Rust workspace.
//!
//! This facade crate re-exports every subsystem under a single name:
//!
//! * [`simcore`] — simulation clock, event queue, deterministic RNG streams,
//!   online statistics.
//! * [`infra`] — physical machines, virtual machines, datacenters, the
//!   measured Atom power curve, the inter-DC network, migrations, monitors
//!   and the client gateway.
//! * [`workload`] — Li-BCN-like synthetic web workload generation: diurnal
//!   and weekly patterns, per-timezone phase shifts, flash crowds.
//! * [`perf`] — ground-truth response-time model (queueing + contention) and
//!   the paper's piecewise-linear SLA function.
//! * [`ml`] — machine learning from scratch: M5 model trees, linear
//!   regression, k-NN regression, datasets, validation metrics.
//! * [`econ`] — the paper's Table II prices, revenue and penalty accounting.
//! * [`green`] — dynamic tariffs, solar/wind production traces and carbon
//!   accounting (the paper's "follow the sun/wind" future-work direction).
//! * [`sched`] — the Figure 3 mathematical model, the profit function,
//!   Descending Best-Fit (Algorithm 1) and its BF / BF-OB / BF-ML variants,
//!   an exact branch-and-bound solver, baselines, and the hierarchical
//!   two-layer multi-DC scheduler.
//! * [`manager`] — the Monitor-Analyze-Plan-Execute loop, the full multi-DC
//!   simulation binding, the model-training pipeline and one experiment
//!   driver per table/figure of the paper.
//!
//! ## Quickstart
//!
//! ```
//! use pamdc::prelude::*;
//! use pamdc::sched::oracle::TrueOracle;
//!
//! // Build the paper's 4-city scenario, seed 7, with 5 web-service VMs.
//! let scenario = ScenarioBuilder::paper_multi_dc().vms(5).seed(7).build();
//! // Drive it for 2 simulated hours under the hierarchical scheduler.
//! let policy = Box::new(HierarchicalPolicy::new(TrueOracle::new()));
//! let (outcome, _) = SimulationRunner::new(scenario, policy)
//!     .run(SimDuration::from_hours(2));
//! assert!(outcome.mean_sla > 0.0 && outcome.mean_sla <= 1.0);
//! ```

pub use pamdc_core as manager;
pub use pamdc_econ as econ;
pub use pamdc_green as green;
pub use pamdc_infra as infra;
pub use pamdc_ml as ml;
pub use pamdc_perf as perf;
pub use pamdc_sched as sched;
pub use pamdc_simcore as simcore;
pub use pamdc_workload as workload;

/// One-stop imports for examples, tests and downstream users.
pub mod prelude {
    pub use crate::econ::prelude::*;
    pub use crate::green::prelude::*;
    pub use crate::infra::prelude::*;
    pub use crate::manager::prelude::*;
    pub use crate::ml::prelude::*;
    pub use crate::perf::prelude::*;
    pub use crate::sched::prelude::*;
    pub use crate::simcore::prelude::*;
    pub use crate::workload::prelude::*;
}
